(* Tests for the multipath-routing protocol: Lemma 1, R(P), the
   update procedure and the exploration tree, including the paper's
   Figure 1 worked example and a Figure 3-style network where the best
   isolated route is not part of the best combination. *)

let check_float ?(eps = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > eps then
    Alcotest.failf "%s: expected %.6f, got %.6f" msg expected actual

(* Figure 1: gateway a(0), extender b(1), client c(2).
   WiFi a-b 15, WiFi b-c 30, PLC a-b 10. Links (fwd ids): wifi a->b =
   0, wifi b->c = 2, plc a->b = 4. *)
let fig1 () =
  let g =
    Multigraph.create ~n_nodes:3 ~n_techs:2
      ~edges:[ (0, 1, 0, 15.0); (1, 2, 0, 30.0); (0, 1, 1, 10.0) ]
  in
  (g, Domain.single_domain_per_tech g)

let test_lemma1_rate () =
  (* Lemma 1 via path_rate on a two-hop same-medium path: both links
     contend, R = (d1 + d2)^-1. *)
  let g =
    Multigraph.create ~n_nodes:3 ~n_techs:1 ~edges:[ (0, 1, 0, 15.0); (1, 2, 0, 30.0) ]
  in
  let dom = Domain.single_domain_per_tech g in
  let p = Paths.of_links g [ 0; 2 ] in
  check_float "R = 1/(1/15+1/30)" 10.0 (Update.path_rate g dom p)

let test_rate_no_interference () =
  (* Hybrid two-hop path with non-interfering mediums: pipeline min. *)
  let g, dom = fig1 () in
  let p = Paths.of_links g [ 4; 2 ] in
  (* PLC 10 then WiFi 30: no shared medium, R = min(10, 30) = 10. *)
  check_float "hybrid pipeline" 10.0 (Update.path_rate g dom p);
  check_float "R(l,P) on plc hop" 10.0 (Update.rate_on_link g dom p 4);
  check_float "R(l,P) on wifi hop" 30.0 (Update.rate_on_link g dom p 2)

let test_rate_zero_capacity () =
  let g =
    Multigraph.create ~n_nodes:3 ~n_techs:1 ~edges:[ (0, 1, 0, 0.0); (1, 2, 0, 30.0) ]
  in
  let dom = Domain.single_domain_per_tech g in
  let p = Paths.of_links g [ 0; 2 ] in
  check_float "dead hop -> 0" 0.0 (Update.path_rate g dom p)

let test_idle_fraction_and_update () =
  let g, dom = fig1 () in
  (* Route 1 = PLC a->b (link 4), WiFi b->c (link 2); R = 10. *)
  let p = Paths.of_links g [ 4; 2 ] in
  (* PLC hop is the bottleneck: idle 0. WiFi b->c consumed 10/30. *)
  check_float "bottleneck idle" 0.0 (Update.idle_fraction g dom p 4);
  check_float "wifi idle" (2.0 /. 3.0) (Update.idle_fraction g dom p 2);
  (* WiFi a->b shares the medium with b->c: same 2/3 idle. *)
  check_float "other wifi idle" (2.0 /. 3.0) (Update.idle_fraction g dom p 0);
  let g' = Update.update g dom p in
  check_float "plc zeroed" 0.0 (Multigraph.capacity g' 4);
  check_float "wifi b->c scaled" 20.0 (Multigraph.capacity g' 2);
  check_float "wifi a->b scaled" 10.0 (Multigraph.capacity g' 0);
  (* Original untouched. *)
  check_float "orig" 10.0 (Multigraph.capacity g 4)

let test_update_leaves_far_links () =
  (* A link in a different medium and different location must keep its
     capacity. *)
  let g =
    Multigraph.create ~n_nodes:4 ~n_techs:2
      ~edges:[ (0, 1, 0, 10.0); (2, 3, 1, 42.0) ]
  in
  let dom = Domain.single_domain_per_tech g in
  let p = Paths.of_links g [ 0 ] in
  let g' = Update.update g dom p in
  check_float "other medium untouched" 42.0 (Multigraph.capacity g' 2)

(* Figure 1's headline result: EMPoWER finds the two routes and their
   combined capacity 10 + 6.6 = 16.6 Mbps. *)
let test_fig1_combination () =
  let g, dom = fig1 () in
  let comb = Multipath.find g dom ~src:0 ~dst:2 in
  Alcotest.(check int) "two routes" 2 (List.length comb.Multipath.paths);
  check_float ~eps:0.01 "total 10 + 20/3" (10.0 +. (20.0 /. 3.0))
    comb.Multipath.total_rate;
  let rates = List.map snd comb.Multipath.paths in
  check_float ~eps:0.01 "first route rate" 10.0 (List.hd rates);
  check_float ~eps:0.01 "second route rate" (20.0 /. 3.0) (List.nth rates 1);
  (* 66% improvement over the best single route, as in the paper. *)
  match Single_path.route_rate g dom ~src:0 ~dst:2 with
  | None -> Alcotest.fail "single path missing"
  | Some (_, r) ->
    Alcotest.(check bool) "66% gain" true
      (comb.Multipath.total_rate /. r > 1.6)

(* A Figure 3-style network: the best isolated route is NOT part of
   the best combination. Mediums A (tech 0) and B (tech 1), single
   collision domain each.

     Route 1: s -A-> a -A-> d   caps 20/20, R = 10
     Route 2: s -A-> c -B-> d   caps 11/11, R = 11 (best isolated)
     Route 3: s -B-> b -B-> d   caps 20/20, R = 10

   Route 2 consumes all airtime of both mediums; Routes 1+3 coexist
   for a total of 20. *)
let fig3_style () =
  let g =
    Multigraph.create ~n_nodes:5 ~n_techs:2
      ~edges:
        [
          (0, 1, 0, 20.0) (* s-a  A  id 0 *);
          (1, 4, 0, 20.0) (* a-d  A  id 2 *);
          (0, 2, 0, 11.0) (* s-c  A  id 4 *);
          (2, 4, 1, 11.0) (* c-d  B  id 6 *);
          (0, 3, 1, 20.0) (* s-b  B  id 8 *);
          (3, 4, 1, 20.0) (* b-d  B  id 10 *);
        ]
  in
  (g, Domain.single_domain_per_tech g)

let test_fig3_best_isolated_route () =
  let g, dom = fig3_style () in
  (* Depth-1 exploration = the best isolated route by rate. *)
  let comb = Multipath.find ~max_depth:1 g dom ~src:0 ~dst:4 in
  Alcotest.(check int) "one route" 1 (List.length comb.Multipath.paths);
  check_float ~eps:1e-6 "best isolated = 11" 11.0 comb.Multipath.total_rate;
  (* ... which differs from the single-path procedure's choice (the
     CSC-weighted shortest path is Route 1 or 3, cost 0.15 < 0.18). *)
  match Single_path.route_rate g dom ~src:0 ~dst:4 with
  | None -> Alcotest.fail "no single path"
  | Some (_, r) -> check_float ~eps:1e-6 "single-path proc rate" 10.0 r

let test_fig3_combination_excludes_best_isolated () =
  let g, dom = fig3_style () in
  let comb = Multipath.find g dom ~src:0 ~dst:4 in
  check_float ~eps:1e-6 "total 20" 20.0 comb.Multipath.total_rate;
  Alcotest.(check int) "two routes" 2 (List.length comb.Multipath.paths);
  (* Neither chosen route goes through node c (the Route-2 relay). *)
  List.iter
    (fun (p, _) ->
      Alcotest.(check bool) "route avoids c" false (List.mem 2 (Paths.nodes g p)))
    comb.Multipath.paths

let test_multipath_unreachable () =
  let g = Multigraph.create ~n_nodes:3 ~n_techs:1 ~edges:[ (0, 1, 0, 10.0) ] in
  let dom = Domain.single_domain_per_tech g in
  let comb = Multipath.find g dom ~src:0 ~dst:2 in
  Alcotest.(check int) "no routes" 0 (List.length comb.Multipath.paths);
  check_float "zero rate" 0.0 comb.Multipath.total_rate

let test_multipath_single_link_network () =
  let g = Multigraph.create ~n_nodes:2 ~n_techs:1 ~edges:[ (0, 1, 0, 50.0) ] in
  let dom = Domain.single_domain_per_tech g in
  let comb = Multipath.find g dom ~src:0 ~dst:1 in
  Alcotest.(check int) "one route" 1 (List.length comb.Multipath.paths);
  check_float "full capacity" 50.0 comb.Multipath.total_rate;
  Alcotest.(check int) "depth 1" 1 comb.Multipath.tree_depth

let test_multipath_parallel_mediums_aggregate () =
  (* Two parallel one-hop links on different mediums aggregate. *)
  let g =
    Multigraph.create ~n_nodes:2 ~n_techs:2 ~edges:[ (0, 1, 0, 30.0); (0, 1, 1, 20.0) ]
  in
  let dom = Domain.single_domain_per_tech g in
  let comb = Multipath.find g dom ~src:0 ~dst:1 in
  check_float "30 + 20" 50.0 comb.Multipath.total_rate;
  Alcotest.(check int) "two routes" 2 (List.length comb.Multipath.paths)

let test_multipath_single_medium_no_gain () =
  (* Two disjoint two-hop routes in ONE medium: no multiplexing gain;
     the procedure must not return a second path that adds nothing.
     Route A: 0-1-3 (20/20), Route B: 0-2-3 (20/20), all same medium:
     after Route A (R=10) everything shares the collision domain and
     is scaled by idle fraction... Route A consumes all airtime, so
     the tree stops at depth 1. *)
  let g =
    Multigraph.create ~n_nodes:4 ~n_techs:1
      ~edges:[ (0, 1, 0, 20.0); (1, 3, 0, 20.0); (0, 2, 0, 20.0); (2, 3, 0, 20.0) ]
  in
  let dom = Domain.single_domain_per_tech g in
  let comb = Multipath.find g dom ~src:0 ~dst:3 in
  check_float ~eps:1e-6 "R = 10 total" 10.0 comb.Multipath.total_rate;
  Alcotest.(check int) "single route" 1 (List.length comb.Multipath.paths)

let test_multipath_n1_vs_n5 () =
  (* With n = 1 the tree can only follow the CSC-shortest path chain;
     with n = 5 it must do at least as well. *)
  let g, dom = fig3_style () in
  let c1 = Multipath.find ~n:1 g dom ~src:0 ~dst:4 in
  let c5 = Multipath.find ~n:5 g dom ~src:0 ~dst:4 in
  Alcotest.(check bool) "n=5 >= n=1" true
    (c5.Multipath.total_rate >= c1.Multipath.total_rate -. 1e-9)

let test_routes_accessor () =
  let g, dom = fig1 () in
  let comb = Multipath.find g dom ~src:0 ~dst:2 in
  Alcotest.(check int) "routes list" (List.length comb.Multipath.paths)
    (List.length (Multipath.routes comb))

(* --- alternative metrics (footnote 7) --- *)

let test_metrics_names_and_weights () =
  Alcotest.(check int) "five metrics" 5 (List.length Metrics.all);
  let g, dom = fig1 () in
  (* ETT weight is d_l. *)
  check_float "ett weight" (1.0 /. 15.0) (Metrics.link_weight Metrics.Ett g dom 0);
  (* IRU multiplies by the domain size (4 wifi links here). *)
  check_float "iru weight" (4.0 /. 15.0) (Metrics.link_weight Metrics.Iru g dom 0);
  (* CATT sums d over the domain: 2/15 + 2/30. *)
  check_float "catt weight"
    ((2.0 /. 15.0) +. (2.0 /. 30.0))
    (Metrics.link_weight Metrics.Catt g dom 0)

let test_metrics_routes_valid () =
  let inst = Residential.generate (Rng.create 77) in
  let g = Builder.graph inst Builder.Hybrid in
  let dom = Domain.of_instance inst Builder.Hybrid g in
  List.iter
    (fun m ->
      match Metrics.route m g dom ~src:0 ~dst:9 with
      | None -> Alcotest.failf "%s found no route" (Metrics.name m)
      | Some (p, cost) ->
        Alcotest.(check bool) "valid endpoints" true
          (Paths.src g p = 0 && Paths.dst g p = 9);
        Alcotest.(check bool) "finite cost" true (Float.is_finite cost))
    Metrics.all

let test_metrics_ett_ignores_csc () =
  (* On the test_dijkstra_no_csc network, ETT must pick the
     higher-capacity same-tech route that the CSC metric avoids. *)
  let g =
    Multigraph.create ~n_nodes:4 ~n_techs:2
      ~edges:[ (0, 1, 0, 25.0); (1, 3, 0, 25.0); (0, 2, 0, 20.0); (2, 3, 1, 20.0) ]
  in
  let dom = Domain.single_domain_per_tech g in
  (match Metrics.route Metrics.Ett g dom ~src:0 ~dst:3 with
  | Some (p, _) -> Alcotest.(check (list int)) "ett same-tech" [ 0; 0 ] (Paths.techs g p)
  | None -> Alcotest.fail "no ett route");
  match Metrics.route Metrics.Empower_csc g dom ~src:0 ~dst:3 with
  | Some (p, _) ->
    Alcotest.(check (list int)) "empower alternates" [ 0; 1 ] (Paths.techs g p)
  | None -> Alcotest.fail "no empower route"

let test_optimal_csc_cost_and_route () =
  (* Tech report: w_ns = 0, w_s = -min(d_in, d_out). On a tie between
     a same-tech and an alternating route of equal capacities, the
     optimal CSC strictly prefers alternation. *)
  let g =
    Multigraph.create ~n_nodes:4 ~n_techs:2
      ~edges:[ (0, 1, 0, 20.0); (1, 3, 0, 20.0); (0, 2, 0, 20.0); (2, 3, 1, 20.0) ]
  in
  let dom = Domain.single_domain_per_tech g in
  let same_tech = Paths.of_links g [ 0; 2 ] in
  let alternating = Paths.of_links g [ 4; 6 ] in
  check_float "same tech: plain sum" 0.1 (Metrics.optimal_csc_cost g same_tech);
  check_float "alternating: rewarded" (0.1 -. 0.05)
    (Metrics.optimal_csc_cost g alternating);
  match Metrics.route Metrics.Optimal_csc g dom ~src:0 ~dst:3 with
  | Some (p, c) ->
    Alcotest.(check (list int)) "picks alternation" [ 0; 1 ] (Paths.techs g p);
    check_float "reranked cost" 0.05 c
  | None -> Alcotest.fail "no route"

(* Property tests on random hybrid networks. *)

let random_instance seed =
  let rng = Rng.create seed in
  Residential.generate rng

let prop_update_shrinks_capacities =
  QCheck.Test.make ~name:"update never increases capacities" ~count:60
    QCheck.(int_bound 100000)
    (fun seed ->
      let inst = random_instance seed in
      let g = Builder.graph inst Builder.Hybrid in
      let dom = Domain.of_instance inst Builder.Hybrid g in
      match Single_path.route g ~src:0 ~dst:(Multigraph.n_nodes g - 1) with
      | None -> true
      | Some (p, _) ->
        let g' = Update.update g dom p in
        let ok = ref true in
        for l = 0 to Multigraph.num_links g - 1 do
          if Multigraph.capacity g' l > Multigraph.capacity g l +. 1e-9 then ok := false
        done;
        !ok)

let prop_update_zeroes_bottleneck =
  QCheck.Test.make ~name:"update zeroes at least one path link" ~count:60
    QCheck.(int_bound 100000)
    (fun seed ->
      let inst = random_instance (seed + 13) in
      let g = Builder.graph inst Builder.Hybrid in
      let dom = Domain.of_instance inst Builder.Hybrid g in
      match Single_path.route g ~src:0 ~dst:(Multigraph.n_nodes g - 1) with
      | None -> true
      | Some (p, _) ->
        if Update.path_rate g dom p <= 0.0 then true
        else begin
          let g' = Update.update g dom p in
          List.exists (fun l -> Multigraph.capacity g' l < 1e-9) p.Paths.links
        end)

let prop_combination_at_least_single_path =
  QCheck.Test.make ~name:"combination total >= single-path rate" ~count:40
    QCheck.(int_bound 100000)
    (fun seed ->
      let inst = random_instance (seed + 29) in
      let g = Builder.graph inst Builder.Hybrid in
      let dom = Domain.of_instance inst Builder.Hybrid g in
      let src = 0 and dst = Multigraph.n_nodes g - 1 in
      match Single_path.route_rate g dom ~src ~dst with
      | None -> true
      | Some (_, r) ->
        let comb = Multipath.find g dom ~src ~dst in
        comb.Multipath.total_rate >= r -. 1e-6)

let prop_routes_valid =
  QCheck.Test.make ~name:"returned routes are loopless src->dst paths" ~count:40
    QCheck.(int_bound 100000)
    (fun seed ->
      let inst = random_instance (seed + 41) in
      let g = Builder.graph inst Builder.Hybrid in
      let dom = Domain.of_instance inst Builder.Hybrid g in
      let src = 0 and dst = Multigraph.n_nodes g - 1 in
      let comb = Multipath.find g dom ~src ~dst in
      List.for_all
        (fun (p, r) ->
          Paths.is_loopless g p && Paths.src g p = src && Paths.dst g p = dst && r > 0.0)
        comb.Multipath.paths)

let () =
  Alcotest.run "routing"
    [
      ( "rates",
        [
          Alcotest.test_case "lemma 1" `Quick test_lemma1_rate;
          Alcotest.test_case "hybrid pipeline" `Quick test_rate_no_interference;
          Alcotest.test_case "zero capacity" `Quick test_rate_zero_capacity;
        ] );
      ( "update",
        [
          Alcotest.test_case "idle fractions + update" `Quick
            test_idle_fraction_and_update;
          Alcotest.test_case "far links untouched" `Quick test_update_leaves_far_links;
        ] );
      ( "multipath",
        [
          Alcotest.test_case "figure 1 combination" `Quick test_fig1_combination;
          Alcotest.test_case "figure 3: best isolated" `Quick
            test_fig3_best_isolated_route;
          Alcotest.test_case "figure 3: combination" `Quick
            test_fig3_combination_excludes_best_isolated;
          Alcotest.test_case "unreachable" `Quick test_multipath_unreachable;
          Alcotest.test_case "single link" `Quick test_multipath_single_link_network;
          Alcotest.test_case "parallel mediums aggregate" `Quick
            test_multipath_parallel_mediums_aggregate;
          Alcotest.test_case "single medium: no fake gain" `Quick
            test_multipath_single_medium_no_gain;
          Alcotest.test_case "n=1 vs n=5" `Quick test_multipath_n1_vs_n5;
          Alcotest.test_case "routes accessor" `Quick test_routes_accessor;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "weights" `Quick test_metrics_names_and_weights;
          Alcotest.test_case "routes valid" `Quick test_metrics_routes_valid;
          Alcotest.test_case "ett vs csc" `Quick test_metrics_ett_ignores_csc;
          Alcotest.test_case "optimal csc" `Quick test_optimal_csc_cost_and_route;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_update_shrinks_capacities;
          QCheck_alcotest.to_alcotest prop_update_zeroes_bottleneck;
          QCheck_alcotest.to_alcotest prop_combination_at_least_single_path;
          QCheck_alcotest.to_alcotest prop_routes_valid;
        ] );
    ]
