(* Tests for the slot-accurate CSMA/CA model (802.11 DCF vs IEEE
   1901). *)

let sim ?(slots = 60_000) proto n seed =
  Csma.simulate ~slots (Rng.create seed) proto ~n_stations:n

let test_single_station_no_collisions () =
  List.iter
    (fun proto ->
      let r = sim proto 1 1 in
      Alcotest.(check (float 0.0)) "no collisions" 0.0 r.Csma.collision_rate;
      Alcotest.(check bool) "airtime mostly used" true (r.Csma.throughput > 0.6);
      Alcotest.(check (float 0.0)) "perfectly fair" 1.0 r.Csma.jain)
    [ Csma.Dcf_80211; Csma.Csma_1901 ]

let test_collisions_grow_with_contention () =
  List.iter
    (fun proto ->
      let c2 = (sim proto 2 2).Csma.collision_rate in
      let c16 = (sim proto 16 2).Csma.collision_rate in
      Alcotest.(check bool) "monotone-ish in N" true (c16 > c2);
      Alcotest.(check bool) "nonzero under contention" true (c2 > 0.0))
    [ Csma.Dcf_80211; Csma.Csma_1901 ]

let test_1901_defers_more_collides_less () =
  (* The deferral counter is 1901's collision-avoidance mechanism;
     reference [40]'s headline comparison. *)
  List.iter
    (fun n ->
      let wifi = sim Csma.Dcf_80211 n 3 and plc = sim Csma.Csma_1901 n 3 in
      if plc.Csma.collision_rate >= wifi.Csma.collision_rate then
        Alcotest.failf "N=%d: 1901 collides more (%.3f vs %.3f)" n
          plc.Csma.collision_rate wifi.Csma.collision_rate)
    [ 4; 8; 16 ]

let test_long_term_fairness () =
  List.iter
    (fun proto ->
      let r = sim ~slots:200_000 proto 8 4 in
      Alcotest.(check bool) "jain close to 1" true (r.Csma.jain > 0.95))
    [ Csma.Dcf_80211; Csma.Csma_1901 ]

let test_1901_short_term_unfair_at_small_n () =
  (* [40]: with few stations, 1901's aggressive deferral produces
     bursty service (one station hogging while others defer). *)
  let wifi = sim ~slots:200_000 Csma.Dcf_80211 2 5 in
  let plc = sim ~slots:200_000 Csma.Csma_1901 2 5 in
  Alcotest.(check bool) "1901 burstier at N=2" true
    (plc.Csma.service_cv > wifi.Csma.service_cv)

let test_throughput_bounds () =
  List.iter
    (fun proto ->
      List.iter
        (fun n ->
          let r = sim proto n 6 in
          Alcotest.(check bool) "throughput in (0,1]" true
            (r.Csma.throughput > 0.0 && r.Csma.throughput <= 1.0))
        [ 1; 3; 9; 27 ])
    [ Csma.Dcf_80211; Csma.Csma_1901 ]

let test_determinism () =
  let a = sim Csma.Csma_1901 5 7 and b = sim Csma.Csma_1901 5 7 in
  Alcotest.(check bool) "same seed, same run" true (a = b)

let test_validation () =
  Alcotest.(check bool) "zero stations rejected" true
    (try
       ignore (Csma.simulate (Rng.create 1) Csma.Dcf_80211 ~n_stations:0);
       false
     with Invalid_argument _ -> true)

let prop_successes_sum_matches_throughput =
  QCheck.Test.make ~name:"throughput consistent with per-station successes"
    ~count:20
    QCheck.(pair (int_range 1 12) (int_bound 1000))
    (fun (n, seed) ->
      let frame_slots = 20 in
      let r =
        Csma.simulate ~slots:30_000 ~frame_slots (Rng.create seed) Csma.Dcf_80211
          ~n_stations:n
      in
      let total = Array.fold_left ( + ) 0 r.Csma.per_station in
      (* busy success slots = total successes x frame length; the slot
         count can overshoot `slots` by at most one frame. *)
      let implied =
        float_of_int (total * frame_slots) /. float_of_int (30_000 + frame_slots)
      in
      Float.abs (implied -. r.Csma.throughput) < 0.05)

let test_experiment_smoke () =
  let d = Mac_fairness.run ~slots:20_000 ~stations:[ 1; 4 ] () in
  Alcotest.(check int) "two rows" 2 (List.length d.Mac_fairness.rows)

let () =
  Alcotest.run "macsim"
    [
      ( "csma",
        [
          Alcotest.test_case "single station" `Quick test_single_station_no_collisions;
          Alcotest.test_case "contention grows collisions" `Quick
            test_collisions_grow_with_contention;
          Alcotest.test_case "1901 collides less" `Quick
            test_1901_defers_more_collides_less;
          Alcotest.test_case "long-term fairness" `Quick test_long_term_fairness;
          Alcotest.test_case "1901 short-term unfair" `Quick
            test_1901_short_term_unfair_at_small_n;
          Alcotest.test_case "throughput bounds" `Quick test_throughput_bounds;
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "validation" `Quick test_validation;
          QCheck_alcotest.to_alcotest prop_successes_sum_matches_throughput;
        ] );
      ( "experiment",
        [ Alcotest.test_case "smoke" `Quick test_experiment_smoke ] );
    ]
