(* Tests for the two-phase simplex. *)

let check_float ?(eps = 1e-7) msg expected actual =
  if Float.abs (expected -. actual) > eps then
    Alcotest.failf "%s: expected %.9f, got %.9f" msg expected actual

let solve_exn ~c ~rows =
  match Simplex.maximize ~c ~rows with
  | Simplex.Optimal (x, v) -> (x, v)
  | Simplex.Infeasible -> Alcotest.fail "unexpected infeasible"
  | Simplex.Unbounded -> Alcotest.fail "unexpected unbounded"

let test_basic_2d () =
  (* max x + y st x <= 3, y <= 2. *)
  let x, v =
    solve_exn ~c:[| 1.0; 1.0 |]
      ~rows:[ ([| 1.0; 0.0 |], Simplex.Le, 3.0); ([| 0.0; 1.0 |], Simplex.Le, 2.0) ]
  in
  check_float "objective" 5.0 v;
  check_float "x" 3.0 x.(0);
  check_float "y" 2.0 x.(1)

let test_shared_constraint () =
  (* max 3x + 2y st x + y <= 4, x <= 2 -> x=2, y=2, obj=10. *)
  let x, v =
    solve_exn ~c:[| 3.0; 2.0 |]
      ~rows:[ ([| 1.0; 1.0 |], Simplex.Le, 4.0); ([| 1.0; 0.0 |], Simplex.Le, 2.0) ]
  in
  check_float "objective" 10.0 v;
  check_float "x" 2.0 x.(0);
  check_float "y" 2.0 x.(1)

let test_equality () =
  (* max x + 2y st x + y = 3, y <= 2 -> (1,2), obj 5. *)
  let x, v =
    solve_exn ~c:[| 1.0; 2.0 |]
      ~rows:[ ([| 1.0; 1.0 |], Simplex.Eq, 3.0); ([| 0.0; 1.0 |], Simplex.Le, 2.0) ]
  in
  check_float "objective" 5.0 v;
  check_float "x" 1.0 x.(0);
  check_float "y" 2.0 x.(1)

let test_ge_constraint () =
  (* min x st x >= 4 (via maximize -x). *)
  match
    Simplex.minimize ~c:[| 1.0 |] ~rows:[ ([| 1.0 |], Simplex.Ge, 4.0) ]
  with
  | Simplex.Optimal (x, v) ->
    check_float "objective" 4.0 v;
    check_float "x" 4.0 x.(0)
  | _ -> Alcotest.fail "expected optimal"

let test_infeasible () =
  match
    Simplex.maximize ~c:[| 1.0 |]
      ~rows:[ ([| 1.0 |], Simplex.Le, 1.0); ([| 1.0 |], Simplex.Ge, 2.0) ]
  with
  | Simplex.Infeasible -> ()
  | _ -> Alcotest.fail "expected infeasible"

let test_unbounded () =
  match Simplex.maximize ~c:[| 1.0 |] ~rows:[ ([| -1.0 |], Simplex.Le, 1.0) ] with
  | Simplex.Unbounded -> ()
  | _ -> Alcotest.fail "expected unbounded"

let test_negative_rhs_normalization () =
  (* x >= 1 written as -x <= -1. *)
  match
    Simplex.minimize ~c:[| 1.0 |] ~rows:[ ([| -1.0 |], Simplex.Le, -1.0) ]
  with
  | Simplex.Optimal (x, v) ->
    check_float "objective" 1.0 v;
    check_float "x" 1.0 x.(0)
  | _ -> Alcotest.fail "expected optimal"

let test_degenerate () =
  (* Degenerate vertex: three constraints meeting at a point. *)
  let _, v =
    solve_exn ~c:[| 1.0; 1.0 |]
      ~rows:
        [
          ([| 1.0; 0.0 |], Simplex.Le, 1.0);
          ([| 0.0; 1.0 |], Simplex.Le, 1.0);
          ([| 1.0; 1.0 |], Simplex.Le, 2.0);
        ]
  in
  check_float "objective" 2.0 v

let test_row_length_mismatch () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Simplex.maximize ~c:[| 1.0; 2.0 |] ~rows:[ ([| 1.0 |], Simplex.Le, 1.0) ]);
       false
     with Invalid_argument _ -> true)

let test_zero_objective () =
  let _, v = solve_exn ~c:[| 0.0 |] ~rows:[ ([| 1.0 |], Simplex.Le, 5.0) ] in
  check_float "objective" 0.0 v

(* Randomized: compare against brute-force vertex enumeration for 2-D
   problems. *)
let prop_matches_vertex_enumeration =
  QCheck.Test.make ~name:"2-D LP matches vertex enumeration" ~count:100
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Rng.create seed in
      (* Constraints: x <= a, y <= b, x + cy <= d, all >= 0. *)
      let a = Rng.uniform rng 0.5 10.0 in
      let b = Rng.uniform rng 0.5 10.0 in
      let c = Rng.uniform rng 0.2 3.0 in
      let d = Rng.uniform rng 0.5 12.0 in
      let o1 = Rng.uniform rng 0.1 5.0 and o2 = Rng.uniform rng 0.1 5.0 in
      let rows =
        [
          ([| 1.0; 0.0 |], Simplex.Le, a);
          ([| 0.0; 1.0 |], Simplex.Le, b);
          ([| 1.0; c |], Simplex.Le, d);
        ]
      in
      match Simplex.maximize ~c:[| o1; o2 |] ~rows with
      | Simplex.Optimal (x, v) ->
        (* Feasibility. *)
        let feasible =
          x.(0) >= -1e-9 && x.(1) >= -1e-9 && x.(0) <= a +. 1e-9
          && x.(1) <= b +. 1e-9
          && x.(0) +. (c *. x.(1)) <= d +. 1e-9
        in
        (* Enumerate candidate vertices. *)
        let candidates =
          [
            (0.0, 0.0); (a, 0.0); (0.0, b); (a, b);
            (a, Float.max 0.0 ((d -. a) /. c));
            (Float.max 0.0 (d -. (c *. b)), b);
            (d, 0.0); (0.0, d /. c);
          ]
        in
        let feas (x, y) =
          x >= 0.0 && y >= 0.0 && x <= a +. 1e-9 && y <= b +. 1e-9
          && x +. (c *. y) <= d +. 1e-9
        in
        let best =
          List.fold_left
            (fun acc p ->
              if feas p then Float.max acc ((o1 *. fst p) +. (o2 *. snd p)) else acc)
            0.0 candidates
        in
        feasible && Float.abs (v -. best) < 1e-6
      | _ -> false)

let prop_optimal_is_feasible =
  QCheck.Test.make ~name:"random LP solutions satisfy all constraints" ~count:60
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Rng.create (seed + 5) in
      let n = 2 + Rng.int rng 5 in
      let m = 2 + Rng.int rng 5 in
      let c = Array.init n (fun _ -> Rng.uniform rng 0.0 3.0) in
      let rows =
        List.init m (fun _ ->
            ( Array.init n (fun _ -> Rng.uniform rng 0.1 2.0),
              Simplex.Le,
              Rng.uniform rng 1.0 10.0 ))
      in
      match Simplex.maximize ~c ~rows with
      | Simplex.Optimal (x, _) ->
        Array.for_all (fun v -> v >= -1e-9) x
        && List.for_all
             (fun (a, _, b) ->
               let lhs = ref 0.0 in
               Array.iteri (fun i ai -> lhs := !lhs +. (ai *. x.(i))) a;
               !lhs <= b +. 1e-6)
             rows
      | _ -> false)

let () =
  Alcotest.run "lp"
    [
      ( "simplex",
        [
          Alcotest.test_case "basic 2d" `Quick test_basic_2d;
          Alcotest.test_case "shared constraint" `Quick test_shared_constraint;
          Alcotest.test_case "equality" `Quick test_equality;
          Alcotest.test_case "ge constraint" `Quick test_ge_constraint;
          Alcotest.test_case "infeasible" `Quick test_infeasible;
          Alcotest.test_case "unbounded" `Quick test_unbounded;
          Alcotest.test_case "negative rhs" `Quick test_negative_rhs_normalization;
          Alcotest.test_case "degenerate vertex" `Quick test_degenerate;
          Alcotest.test_case "row length mismatch" `Quick test_row_length_mismatch;
          Alcotest.test_case "zero objective" `Quick test_zero_objective;
          QCheck_alcotest.to_alcotest prop_matches_vertex_enumeration;
          QCheck_alcotest.to_alcotest prop_optimal_is_feasible;
        ] );
    ]
