(* Tests for the layer-2.5 protocol: header wire format, source-route
   codec, reorder buffer and ACK collection. *)

let check_float ?(eps = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > eps then
    Alcotest.failf "%s: expected %.9f, got %.9f" msg expected actual

(* --- Route_codec --- *)

let test_iface_hash_range () =
  for node = 0 to 50 do
    for tech = 0 to 2 do
      let h = Route_codec.iface_hash ~node ~tech in
      if h < 1 || h > 0xFFFF then Alcotest.failf "hash out of range: %d" h
    done
  done

let test_iface_hash_distinct_smallnet () =
  (* All interfaces of a 22-node 3-tech network get distinct hashes. *)
  let seen = Hashtbl.create 128 in
  for node = 0 to 21 do
    for tech = 0 to 2 do
      let h = Route_codec.iface_hash ~node ~tech in
      if Hashtbl.mem seen h then Alcotest.failf "collision at %d/%d" node tech;
      Hashtbl.add seen h ()
    done
  done

let fig1_graph () =
  Multigraph.create ~n_nodes:3 ~n_techs:2
    ~edges:[ (0, 1, 0, 15.0); (1, 2, 0, 30.0); (0, 1, 1, 10.0) ]

let test_route_of_path_and_forwarding () =
  let g = fig1_graph () in
  let p = Paths.of_links g [ 4; 2 ] in
  let route = Route_codec.route_of_path g p in
  Alcotest.(check int) "two entries" 2 (Array.length route);
  (* Node 1's interfaces: it receives hop 1 on PLC (tech 1). *)
  let node1_ifaces =
    [ Route_codec.iface_hash ~node:1 ~tech:0; Route_codec.iface_hash ~node:1 ~tech:1 ]
  in
  let node2_ifaces = [ Route_codec.iface_hash ~node:2 ~tech:0 ] in
  (match Route_codec.next_hop route ~my_ifaces:node1_ifaces with
  | Some h ->
    Alcotest.(check int) "next is node2 wifi" (Route_codec.iface_hash ~node:2 ~tech:0) h
  | None -> Alcotest.fail "expected a next hop");
  Alcotest.(check bool) "node1 not destination" false
    (Route_codec.is_destination route ~my_ifaces:node1_ifaces);
  Alcotest.(check bool) "node2 is destination" true
    (Route_codec.is_destination route ~my_ifaces:node2_ifaces);
  Alcotest.(check bool) "node2 has no next hop" true
    (Route_codec.next_hop route ~my_ifaces:node2_ifaces = None);
  (* An unrelated node neither matches nor forwards. *)
  let stranger = [ Route_codec.iface_hash ~node:7 ~tech:0 ] in
  Alcotest.(check bool) "stranger: none" true
    (Route_codec.next_hop route ~my_ifaces:stranger = None)

let test_route_too_long () =
  let edges = List.init 7 (fun i -> (i, i + 1, 0, 10.0)) in
  let g = Multigraph.create ~n_nodes:8 ~n_techs:1 ~edges in
  let p = Paths.of_links g (List.init 7 (fun i -> 2 * i)) in
  Alcotest.(check bool) "7 hops rejected" true
    (try
       ignore (Route_codec.route_of_path g p);
       false
     with Invalid_argument _ -> true)

(* --- Header --- *)

let test_header_size () = Alcotest.(check int) "20 bytes" 20 Header.size

let test_header_roundtrip () =
  let h = Header.make ~seq:123456789 ~qr:1.5 ~route:[| 10; 20; 30 |] in
  let h' = Header.decode (Header.encode h) in
  Alcotest.(check bool) "roundtrip" true (Header.equal h h');
  Alcotest.(check int) "encoded length" Header.size (Bytes.length (Header.encode h))

let test_header_qr_resolution () =
  (* q_r is stored in Q12.20 fixed point: decoding rounds to the
     resolution. *)
  let h = Header.make ~seq:0 ~qr:0.123456789 ~route:[| 1 |] in
  let h' = Header.decode (Header.encode h) in
  check_float ~eps:Header.qr_resolution "qr quantized" 0.123456789 h'.Header.qr

let test_header_qr_saturates () =
  let h = Header.make ~seq:0 ~qr:(Header.qr_max *. 10.0) ~route:[| 1 |] in
  let h' = Header.decode (Header.encode h) in
  check_float ~eps:1e-3 "saturated" Header.qr_max h'.Header.qr

let test_header_add_price () =
  let h = Header.make ~seq:0 ~qr:0.5 ~route:[| 1 |] in
  let h = Header.add_price h 0.25 in
  check_float "accumulated" 0.75 h.Header.qr;
  Alcotest.(check bool) "negative price rejected" true
    (try
       ignore (Header.add_price h (-1.0));
       false
     with Invalid_argument _ -> true)

let test_header_validation () =
  let bad f = try f (); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "negative seq" true
    (bad (fun () -> ignore (Header.make ~seq:(-1) ~qr:0.0 ~route:[| 1 |])));
  Alcotest.(check bool) "route too long" true
    (bad (fun () -> ignore (Header.make ~seq:0 ~qr:0.0 ~route:(Array.make 7 1))));
  Alcotest.(check bool) "zero route entry" true
    (bad (fun () -> ignore (Header.make ~seq:0 ~qr:0.0 ~route:[| 0 |])));
  Alcotest.(check bool) "decode wrong length" true
    (bad (fun () -> ignore (Header.decode (Bytes.make 19 '\000'))));
  (* Malformed padding: non-zero after zero. *)
  let h = Header.make ~seq:0 ~qr:0.0 ~route:[| 5 |] in
  let b = Header.encode h in
  Bytes.set b 12 '\001';
  Bytes.set b 13 '\001';
  Alcotest.(check bool) "hole in route rejected" true
    (bad (fun () -> ignore (Header.decode b)))

let prop_header_roundtrip =
  QCheck.Test.make ~name:"header encode/decode roundtrip" ~count:300
    QCheck.(
      triple (int_bound 0xFFFFFFF) (float_range 0.0 100.0)
        (list_of_size Gen.(int_range 1 6) (int_range 1 0xFFFF)))
    (fun (seq, qr, route) ->
      let h = Header.make ~seq ~qr ~route:(Array.of_list route) in
      let h' = Header.decode (Header.encode h) in
      h'.Header.seq = h.Header.seq
      && h'.Header.route = h.Header.route
      && Float.abs (h'.Header.qr -. h.Header.qr) <= Header.qr_resolution)

(* --- Reorder --- *)

let test_reorder_in_order () =
  let r = Reorder.create ~n_routes:2 () in
  Alcotest.(check bool) "deliver 0" true
    (Reorder.push r ~route:0 ~seq:0 "a" = [ Reorder.Deliver (0, "a") ]);
  Alcotest.(check bool) "deliver 1" true
    (Reorder.push r ~route:1 ~seq:1 "b" = [ Reorder.Deliver (1, "b") ]);
  Alcotest.(check int) "next" 2 (Reorder.next_expected r)

let test_reorder_holds_gap () =
  let r = Reorder.create ~n_routes:2 () in
  Alcotest.(check bool) "2 buffered" true (Reorder.push r ~route:0 ~seq:2 "c" = []);
  Alcotest.(check int) "pending" 1 (Reorder.pending r);
  (* seq 0 arrives: deliver 0, still waiting for 1 (route 1 has not
     moved past it). *)
  Alcotest.(check bool) "deliver 0 only" true
    (Reorder.push r ~route:0 ~seq:0 "a" = [ Reorder.Deliver (0, "a") ]);
  (* Route 1 delivers seq 3: now both routes are past 1 -> lost. *)
  let evs = Reorder.push r ~route:1 ~seq:3 "d" in
  Alcotest.(check bool) "lost 1 then deliver 2,3" true
    (evs = [ Reorder.Lost 1; Reorder.Deliver (2, "c"); Reorder.Deliver (3, "d") ])

let test_reorder_single_route_loss () =
  let r = Reorder.create ~n_routes:1 () in
  ignore (Reorder.push r ~route:0 ~seq:0 "a");
  let evs = Reorder.push r ~route:0 ~seq:2 "c" in
  Alcotest.(check bool) "skip 1" true
    (evs = [ Reorder.Lost 1; Reorder.Deliver (2, "c") ])

let test_reorder_no_loss_mode () =
  let r = Reorder.create ~declare_losses:false ~n_routes:1 () in
  ignore (Reorder.push r ~route:0 ~seq:0 "a");
  Alcotest.(check bool) "gap waits" true (Reorder.push r ~route:0 ~seq:2 "c" = []);
  (* Retransmission arrives later. *)
  let evs = Reorder.push r ~route:0 ~seq:1 "b" in
  Alcotest.(check bool) "drain after retx" true
    (evs = [ Reorder.Deliver (1, "b"); Reorder.Deliver (2, "c") ])

let test_reorder_duplicates_ignored () =
  let r = Reorder.create ~n_routes:1 () in
  ignore (Reorder.push r ~route:0 ~seq:0 "a");
  Alcotest.(check bool) "dup of released" true (Reorder.push r ~route:0 ~seq:0 "a" = []);
  ignore (Reorder.push r ~route:0 ~seq:2 "c");
  Alcotest.(check bool) "dup of buffered" true
    (List.for_all
       (function Reorder.Deliver _ -> false | Reorder.Lost _ -> true)
       (Reorder.push r ~route:0 ~seq:2 "c"))

let test_reorder_validation () =
  let r = Reorder.create ~n_routes:2 () in
  Alcotest.(check bool) "bad route" true
    (try
       ignore (Reorder.push r ~route:2 ~seq:0 "x");
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "negative seq" true
    (try
       ignore (Reorder.push r ~route:0 ~seq:(-1) "x");
       false
     with Invalid_argument _ -> true)

let prop_reorder_delivers_in_order =
  QCheck.Test.make ~name:"reorder releases a sorted prefix-closed stream" ~count:150
    QCheck.(pair (int_bound 100000) (int_range 1 3))
    (fun (seed, n_routes) ->
      let rng = Rng.create seed in
      let r = Reorder.create ~n_routes () in
      let n = 30 in
      (* Per-route FIFO delivery with random interleaving and drops. *)
      let seqs = Array.init n Fun.id in
      Rng.shuffle rng seqs;
      let delivered = ref [] in
      Array.iter
        (fun seq ->
          if Rng.float rng > 0.15 then begin
            let route = Rng.int rng n_routes in
            List.iter
              (function
                | Reorder.Deliver (s, _) -> delivered := s :: !delivered
                | Reorder.Lost _ -> ())
              (Reorder.push r ~route ~seq ())
          end)
        seqs;
      let out = List.rev !delivered in
      (* Strictly increasing. *)
      let rec increasing = function
        | a :: (b :: _ as tl) -> a < b && increasing tl
        | _ -> true
      in
      increasing out)

(* --- Equalizer --- *)

let test_equalizer () =
  let e = Reorder.Equalizer.create ~n_routes:2 in
  Reorder.Equalizer.observe e ~route:0 ~delay:0.010;
  Reorder.Equalizer.observe e ~route:1 ~delay:0.050;
  check_float ~eps:1e-6 "route0 estimate" 0.010
    (Reorder.Equalizer.estimated_delay e ~route:0);
  (* The fast route is held back by the gap. *)
  check_float ~eps:1e-6 "fast held" 0.040 (Reorder.Equalizer.release_delay e ~route:0);
  check_float ~eps:1e-6 "slow not held" 0.0 (Reorder.Equalizer.release_delay e ~route:1);
  (* EWMA moves with new observations. *)
  for _ = 1 to 50 do
    Reorder.Equalizer.observe e ~route:0 ~delay:0.030
  done;
  Alcotest.(check bool) "ewma converges" true
    (Float.abs (Reorder.Equalizer.estimated_delay e ~route:0 -. 0.030) < 0.002)

(* --- Ack --- *)

let test_ack_collector () =
  let c = Ack.collector ~flow:3 ~n_routes:2 in
  Ack.on_packet c ~route:0 ~qr:0.5 ~seq:10 ~bytes:1000;
  Ack.on_packet c ~route:0 ~qr:0.6 ~seq:11 ~bytes:1000;
  Ack.on_packet c ~route:1 ~qr:0.2 ~seq:12 ~bytes:500;
  let ack = Ack.emit c ~now:1.0 in
  Alcotest.(check int) "flow id" 3 ack.Ack.flow;
  (match ack.Ack.reports with
  | [ r0; r1 ] ->
    check_float "qr latest" 0.6 r0.Ack.qr;
    Alcotest.(check int) "highest" 11 r0.Ack.highest_seq;
    Alcotest.(check int) "bytes" 2000 r0.Ack.bytes;
    Alcotest.(check int) "route1 bytes" 500 r1.Ack.bytes
  | _ -> Alcotest.fail "expected two reports");
  (* Window counters reset; state persists. *)
  let ack2 = Ack.emit c ~now:1.1 in
  (match ack2.Ack.reports with
  | [ r0; _ ] ->
    Alcotest.(check int) "window reset" 0 r0.Ack.bytes;
    check_float "qr persists" 0.6 r0.Ack.qr
  | _ -> Alcotest.fail "expected two reports");
  check_float "period" 0.1 Ack.period

let () =
  Alcotest.run "protocol"
    [
      ( "route-codec",
        [
          Alcotest.test_case "hash range" `Quick test_iface_hash_range;
          Alcotest.test_case "hash distinct" `Quick test_iface_hash_distinct_smallnet;
          Alcotest.test_case "forwarding" `Quick test_route_of_path_and_forwarding;
          Alcotest.test_case "route too long" `Quick test_route_too_long;
        ] );
      ( "header",
        [
          Alcotest.test_case "size" `Quick test_header_size;
          Alcotest.test_case "roundtrip" `Quick test_header_roundtrip;
          Alcotest.test_case "qr resolution" `Quick test_header_qr_resolution;
          Alcotest.test_case "qr saturation" `Quick test_header_qr_saturates;
          Alcotest.test_case "add_price" `Quick test_header_add_price;
          Alcotest.test_case "validation" `Quick test_header_validation;
          QCheck_alcotest.to_alcotest prop_header_roundtrip;
        ] );
      ( "reorder",
        [
          Alcotest.test_case "in order" `Quick test_reorder_in_order;
          Alcotest.test_case "holds gap, declares loss" `Quick test_reorder_holds_gap;
          Alcotest.test_case "single-route loss" `Quick test_reorder_single_route_loss;
          Alcotest.test_case "no-loss (TCP) mode" `Quick test_reorder_no_loss_mode;
          Alcotest.test_case "duplicates" `Quick test_reorder_duplicates_ignored;
          Alcotest.test_case "validation" `Quick test_reorder_validation;
          QCheck_alcotest.to_alcotest prop_reorder_delivers_in_order;
        ] );
      ("equalizer", [ Alcotest.test_case "delay equalization" `Quick test_equalizer ]);
      ("ack", [ Alcotest.test_case "collector" `Quick test_ack_collector ]);
    ]
