(* Tests for interference domains and maximal-clique enumeration. *)

let test_single_domain_per_tech () =
  let g =
    Multigraph.create ~n_nodes:4 ~n_techs:2
      ~edges:[ (0, 1, 0, 10.0); (2, 3, 0, 10.0); (0, 1, 1, 10.0) ]
  in
  let dom = Domain.single_domain_per_tech g in
  (* Same tech, even far apart: interfere. *)
  Alcotest.(check bool) "wifi-wifi" true (Domain.interferes dom 0 2);
  (* Different techs never interfere. *)
  Alcotest.(check bool) "wifi-plc" false (Domain.interferes dom 0 4);
  (* Self and peer always interfere. *)
  Alcotest.(check bool) "self" true (Domain.interferes dom 0 0);
  Alcotest.(check bool) "peer" true (Domain.interferes dom 0 1);
  Alcotest.(check int) "num links" 6 (Domain.num_links dom)

let test_domain_contents () =
  let g =
    Multigraph.create ~n_nodes:3 ~n_techs:2
      ~edges:[ (0, 1, 0, 15.0); (1, 2, 0, 30.0); (0, 1, 1, 10.0) ]
  in
  let dom = Domain.single_domain_per_tech g in
  Alcotest.(check (list int)) "wifi domain" [ 0; 1; 2; 3 ] (Domain.domain dom 0);
  Alcotest.(check (list int)) "plc domain" [ 4; 5 ] (Domain.domain dom 4)

let test_standard_same_node_interferes () =
  (* Two WiFi links sharing a node interfere regardless of distance
     scaling. *)
  let g =
    Multigraph.create ~n_nodes:3 ~n_techs:1 ~edges:[ (0, 1, 0, 10.0); (1, 2, 0, 10.0) ]
  in
  let positions =
    [| { Geometry.x = 0.0; y = 0.0 }; { Geometry.x = 30.0; y = 0.0 };
       { Geometry.x = 60.0; y = 0.0 } |]
  in
  let dom =
    Domain.standard ~cs_factor:0.1 g
      ~techs:[| Technology.wifi ~index:0 ~channel:1 |]
      ~positions ~panels:[| 0; 0; 0 |]
  in
  Alcotest.(check bool) "shared node" true (Domain.interferes dom 0 2)

let test_standard_carrier_sense_range () =
  (* Disjoint WiFi links: interfere iff endpoints within cs range. *)
  let g =
    Multigraph.create ~n_nodes:4 ~n_techs:1 ~edges:[ (0, 1, 0, 10.0); (2, 3, 0, 10.0) ]
  in
  let mk gap =
    [| { Geometry.x = 0.0; y = 0.0 }; { Geometry.x = 10.0; y = 0.0 };
       { Geometry.x = 10.0 +. gap; y = 0.0 }; { Geometry.x = 20.0 +. gap; y = 0.0 } |]
  in
  let techs = [| Technology.wifi ~index:0 ~channel:1 |] in
  let near =
    Domain.standard ~cs_factor:1.0 g ~techs ~positions:(mk 20.0) ~panels:[| 0; 0; 0; 0 |]
  in
  Alcotest.(check bool) "within cs range" true (Domain.interferes near 0 2);
  let far =
    Domain.standard ~cs_factor:1.0 g ~techs ~positions:(mk 40.0) ~panels:[| 0; 0; 0; 0 |]
  in
  Alcotest.(check bool) "beyond cs range" false (Domain.interferes far 0 2)

let test_standard_plc_panels () =
  let g =
    Multigraph.create ~n_nodes:4 ~n_techs:1 ~edges:[ (0, 1, 0, 10.0); (2, 3, 0, 10.0) ]
  in
  let positions = Array.make 4 { Geometry.x = 0.0; y = 0.0 } in
  let techs = [| Technology.plc ~index:0 |] in
  let same =
    Domain.standard g ~techs ~positions ~panels:[| 0; 0; 0; 0 |]
  in
  Alcotest.(check bool) "same panel: one domain" true (Domain.interferes same 0 2);
  let split =
    Domain.standard g ~techs ~positions ~panels:[| 0; 0; 1; 1 |]
  in
  Alcotest.(check bool) "different panels: independent" false
    (Domain.interferes split 0 2)

let test_of_instance () =
  let rng = Rng.create 3 in
  let inst = Residential.generate rng in
  let g = Builder.graph inst Builder.Hybrid in
  let dom = Domain.of_instance inst Builder.Hybrid g in
  Alcotest.(check int) "covers all links" (Multigraph.num_links g)
    (Domain.num_links dom);
  (* Cross-technology never interferes. *)
  let links = Multigraph.links g in
  Array.iter
    (fun (a : Multigraph.link) ->
      Array.iter
        (fun (b : Multigraph.link) ->
          if a.Multigraph.tech <> b.Multigraph.tech then
            Alcotest.(check bool) "cross-tech" false
              (Domain.interferes dom a.Multigraph.id b.Multigraph.id))
        links)
    links

let test_cliques_triangle () =
  (* Triangle graph: one maximal clique of size 3. *)
  let neighbors = function
    | 0 -> [ 1; 2 ]
    | 1 -> [ 0; 2 ]
    | 2 -> [ 0; 1 ]
    | _ -> []
  in
  Alcotest.(check (list (list int))) "triangle" [ [ 0; 1; 2 ] ]
    (Clique.bron_kerbosch ~n:3 ~neighbors)

let test_cliques_path () =
  (* Path 0-1-2: two maximal cliques {0,1} and {1,2}. *)
  let neighbors = function 0 -> [ 1 ] | 1 -> [ 0; 2 ] | 2 -> [ 1 ] | _ -> [] in
  Alcotest.(check (list (list int))) "path" [ [ 0; 1 ]; [ 1; 2 ] ]
    (Clique.bron_kerbosch ~n:3 ~neighbors)

let test_cliques_isolated () =
  let neighbors = fun _ -> [] in
  Alcotest.(check (list (list int))) "singletons" [ [ 0 ]; [ 1 ] ]
    (Clique.bron_kerbosch ~n:2 ~neighbors)

let test_cliques_two_components () =
  (* Edge 0-1 plus triangle 2-3-4. *)
  let neighbors = function
    | 0 -> [ 1 ] | 1 -> [ 0 ]
    | 2 -> [ 3; 4 ] | 3 -> [ 2; 4 ] | 4 -> [ 2; 3 ]
    | _ -> []
  in
  Alcotest.(check (list (list int))) "components" [ [ 0; 1 ]; [ 2; 3; 4 ] ]
    (Clique.bron_kerbosch ~n:5 ~neighbors)

let test_graph_cliques_cover_domains () =
  (* Every link must appear in at least one clique, and every clique
     must be a set of pairwise-interfering links. *)
  let rng = Rng.create 5 in
  let inst = Residential.generate rng in
  let g = Builder.graph inst Builder.Hybrid in
  let dom = Domain.of_instance inst Builder.Hybrid g in
  let cliques = Domain.graph_cliques dom in
  let covered = Array.make (Multigraph.num_links g) false in
  List.iter
    (fun clique ->
      List.iter (fun l -> covered.(l) <- true) clique;
      List.iter
        (fun a ->
          List.iter
            (fun b ->
              Alcotest.(check bool) "pairwise interference" true
                (Domain.interferes dom a b))
            clique)
        clique)
    cliques;
  Alcotest.(check bool) "all links covered" true (Array.for_all Fun.id covered)

let prop_interference_symmetric =
  QCheck.Test.make ~name:"interference is symmetric" ~count:30
    QCheck.(int_bound 100000)
    (fun seed ->
      let inst = Residential.generate (Rng.create seed) in
      let g = Builder.graph inst Builder.Hybrid in
      let dom = Domain.of_instance inst Builder.Hybrid g in
      let n = Multigraph.num_links g in
      let ok = ref true in
      for a = 0 to n - 1 do
        for b = 0 to n - 1 do
          if Domain.interferes dom a b <> Domain.interferes dom b a then ok := false
        done
      done;
      !ok)

let prop_domains_sorted_and_reflexive =
  QCheck.Test.make ~name:"domains sorted, contain self and peer" ~count:30
    QCheck.(int_bound 100000)
    (fun seed ->
      let inst = Enterprise.generate (Rng.create (seed + 3)) in
      let g = Builder.graph inst Builder.Hybrid in
      let dom = Domain.of_instance inst Builder.Hybrid g in
      let ok = ref true in
      for l = 0 to Multigraph.num_links g - 1 do
        let d = Domain.domain dom l in
        if not (List.mem l d) then ok := false;
        if not (List.mem (Multigraph.link g l).Multigraph.peer d) then ok := false;
        if List.sort compare d <> d then ok := false
      done;
      !ok)

let () =
  Alcotest.run "interference"
    [
      ( "domains",
        [
          Alcotest.test_case "single domain per tech" `Quick
            test_single_domain_per_tech;
          Alcotest.test_case "domain contents" `Quick test_domain_contents;
          Alcotest.test_case "shared node" `Quick test_standard_same_node_interferes;
          Alcotest.test_case "carrier-sense range" `Quick
            test_standard_carrier_sense_range;
          Alcotest.test_case "plc panels" `Quick test_standard_plc_panels;
          Alcotest.test_case "of_instance" `Quick test_of_instance;
        ] );
      ( "cliques",
        [
          Alcotest.test_case "triangle" `Quick test_cliques_triangle;
          Alcotest.test_case "path" `Quick test_cliques_path;
          Alcotest.test_case "isolated" `Quick test_cliques_isolated;
          Alcotest.test_case "two components" `Quick test_cliques_two_components;
          Alcotest.test_case "cover domains" `Quick test_graph_cliques_cover_domains;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_interference_symmetric;
          QCheck_alcotest.to_alcotest prop_domains_sorted_and_reflexive;
        ] );
    ]
