(* Tests for the multigraph, the CSC-aware Dijkstra, and Yen's
   n-shortest paths. *)

let feq ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps

let check_float ?(eps = 1e-9) msg expected actual =
  if not (feq ~eps expected actual) then
    Alcotest.failf "%s: expected %.6f, got %.6f" msg expected actual

(* The Figure 1 network: gateway a(0), extender b(1), client c(2).
   WiFi a-b 15 Mbps, WiFi b-c 30 Mbps, PLC a-b 10 Mbps. *)
let fig1 () =
  Multigraph.create ~n_nodes:3 ~n_techs:2
    ~edges:[ (0, 1, 0, 15.0); (1, 2, 0, 30.0); (0, 1, 1, 10.0) ]

let test_create_basic () =
  let g = fig1 () in
  Alcotest.(check int) "nodes" 3 (Multigraph.n_nodes g);
  Alcotest.(check int) "techs" 2 (Multigraph.n_techs g);
  Alcotest.(check int) "links" 6 (Multigraph.num_links g);
  check_float "cap fwd" 15.0 (Multigraph.capacity g 0);
  check_float "cap bwd" 15.0 (Multigraph.capacity g 1);
  let l = Multigraph.link g 0 in
  Alcotest.(check int) "src" 0 l.Multigraph.src;
  Alcotest.(check int) "dst" 1 l.Multigraph.dst;
  Alcotest.(check int) "peer" 1 l.Multigraph.peer;
  let p = Multigraph.link g 1 in
  Alcotest.(check int) "peer src" 1 p.Multigraph.src;
  Alcotest.(check int) "peer of peer" 0 p.Multigraph.peer

let test_create_errors () =
  Alcotest.(check bool) "self-loop rejected" true
    (try
       ignore (Multigraph.create ~n_nodes:2 ~n_techs:1 ~edges:[ (0, 0, 0, 1.0) ]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad tech rejected" true
    (try
       ignore (Multigraph.create ~n_nodes:2 ~n_techs:1 ~edges:[ (0, 1, 1, 1.0) ]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "negative capacity rejected" true
    (try
       ignore (Multigraph.create ~n_nodes:2 ~n_techs:1 ~edges:[ (0, 1, 0, -1.0) ]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "nan capacity rejected" true
    (try
       ignore (Multigraph.create ~n_nodes:2 ~n_techs:1 ~edges:[ (0, 1, 0, Float.nan) ]);
       false
     with Invalid_argument _ -> true)

let test_d_metric () =
  let g = fig1 () in
  check_float "d = 1/c" (1.0 /. 15.0) (Multigraph.d g 0);
  let g0 = Multigraph.create ~n_nodes:2 ~n_techs:1 ~edges:[ (0, 1, 0, 0.0) ] in
  Alcotest.(check bool) "d of dead link" true (Multigraph.d g0 0 = infinity);
  Alcotest.(check bool) "dead link unusable" false (Multigraph.usable g0 0)

let test_adjacency () =
  let g = fig1 () in
  Alcotest.(check (list int)) "out of a" [ 0; 4 ] (Multigraph.out_links g 0);
  Alcotest.(check (list int)) "out of b" [ 1; 2; 5 ] (Multigraph.out_links g 1);
  Alcotest.(check (list int)) "in of c" [ 2 ] (Multigraph.in_links g 2);
  Alcotest.(check (list int)) "wifi out of b" [ 1; 2 ] (Multigraph.out_links_tech g 1 0);
  Alcotest.(check (list int)) "plc out of b" [ 5 ] (Multigraph.out_links_tech g 1 1);
  Alcotest.(check (list int)) "a->b links" [ 0; 4 ] (Multigraph.find_links g ~src:0 ~dst:1)

let test_with_capacities () =
  let g = fig1 () in
  let caps = Multigraph.capacities g in
  caps.(0) <- 1.0;
  let g' = Multigraph.with_capacities g caps in
  check_float "updated" 1.0 (Multigraph.capacity g' 0);
  check_float "original untouched" 15.0 (Multigraph.capacity g 0);
  Alcotest.(check bool) "length checked" true
    (try
       ignore (Multigraph.with_capacities g [| 1.0 |]);
       false
     with Invalid_argument _ -> true)

let test_paths_basics () =
  let g = fig1 () in
  let p = Paths.of_links g [ 4; 2 ] in
  Alcotest.(check int) "src" 0 (Paths.src g p);
  Alcotest.(check int) "dst" 2 (Paths.dst g p);
  Alcotest.(check (list int)) "nodes" [ 0; 1; 2 ] (Paths.nodes g p);
  Alcotest.(check int) "hops" 2 (Paths.hops p);
  Alcotest.(check (list int)) "techs" [ 1; 0 ] (Paths.techs g p);
  Alcotest.(check bool) "loopless" true (Paths.is_loopless g p);
  Alcotest.(check bool) "mem" true (Paths.mem_link p 4);
  Alcotest.(check bool) "not mem" false (Paths.mem_link p 0);
  Alcotest.(check bool) "non-contiguous rejected" true
    (try
       ignore (Paths.of_links g [ 0; 0 ]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "empty rejected" true
    (try
       ignore (Paths.of_links g []);
       false
     with Invalid_argument _ -> true)

(* Dijkstra on Figure 1: with the CSC, the PLC-then-WiFi route and the
   WiFi-WiFi route from a to c tie at 2/15; both are shortest. *)
let test_dijkstra_fig1 () =
  let g = fig1 () in
  match Dijkstra.shortest_path g ~src:0 ~dst:2 with
  | None -> Alcotest.fail "no path found"
  | Some (p, cost) ->
    Alcotest.(check int) "two hops" 2 (Paths.hops p);
    check_float ~eps:1e-9 "cost of shortest" (2.0 /. 15.0) cost

let test_dijkstra_csc_prefers_alternation () =
  (* Two two-hop routes of equal capacities: one WiFi-WiFi, one
     WiFi-PLC. The CSC penalizes the same-technology continuation, so
     the alternating route must win. *)
  let g =
    Multigraph.create ~n_nodes:4 ~n_techs:2
      ~edges:
        [
          (0, 1, 0, 20.0) (* wifi s-m *);
          (1, 3, 0, 20.0) (* wifi m-d *);
          (0, 2, 0, 20.0) (* wifi s-m' *);
          (2, 3, 1, 20.0) (* plc m'-d *);
        ]
  in
  match Dijkstra.shortest_path g ~src:0 ~dst:3 with
  | None -> Alcotest.fail "no path"
  | Some (p, _) ->
    Alcotest.(check (list int)) "alternating techs" [ 0; 1 ] (Paths.techs g p)

let test_dijkstra_no_csc () =
  let g =
    Multigraph.create ~n_nodes:4 ~n_techs:2
      ~edges:
        [
          (0, 1, 0, 25.0);
          (1, 3, 0, 25.0);
          (0, 2, 0, 20.0);
          (2, 3, 1, 20.0);
        ]
  in
  (* Without CSC the higher-capacity same-tech route wins; with CSC
     (wns = 1/25 at node 1) it is penalized: 2/25 + 1/25 = 0.12 vs
     2/20 = 0.1. *)
  (match Dijkstra.shortest_path ~csc:false g ~src:0 ~dst:3 with
  | Some (p, cost) ->
    Alcotest.(check (list int)) "no-CSC picks capacity" [ 0; 0 ] (Paths.techs g p);
    check_float "no-CSC cost" (2.0 /. 25.0) cost
  | None -> Alcotest.fail "no path");
  match Dijkstra.shortest_path ~csc:true g ~src:0 ~dst:3 with
  | Some (p, _) ->
    Alcotest.(check (list int)) "CSC picks alternation" [ 0; 1 ] (Paths.techs g p)
  | None -> Alcotest.fail "no path"

let test_dijkstra_unreachable () =
  let g =
    Multigraph.create ~n_nodes:4 ~n_techs:1 ~edges:[ (0, 1, 0, 10.0); (2, 3, 0, 10.0) ]
  in
  Alcotest.(check bool) "disconnected" true
    (Dijkstra.shortest_path g ~src:0 ~dst:3 = None)

let test_dijkstra_zero_capacity_avoided () =
  let g =
    Multigraph.create ~n_nodes:3 ~n_techs:1
      ~edges:[ (0, 1, 0, 10.0); (1, 2, 0, 0.0); (0, 2, 0, 5.0) ]
  in
  match Dijkstra.shortest_path g ~src:0 ~dst:2 with
  | None -> Alcotest.fail "no path"
  | Some (p, _) ->
    Alcotest.(check int) "direct route (dead relay avoided)" 1 (Paths.hops p)

let test_dijkstra_banned () =
  let g =
    Multigraph.create ~n_nodes:3 ~n_techs:1
      ~edges:[ (0, 1, 0, 10.0); (1, 2, 0, 10.0); (0, 2, 0, 1.0) ]
  in
  let constraints =
    { Dijkstra.banned_links = (fun l -> l = 0); banned_nodes = (fun _ -> false) }
  in
  (match Dijkstra.shortest_path ~constraints g ~src:0 ~dst:2 with
  | Some (p, _) -> Alcotest.(check int) "detour via direct link" 1 (Paths.hops p)
  | None -> Alcotest.fail "no path");
  let constraints =
    { Dijkstra.banned_links = (fun _ -> false); banned_nodes = (fun n -> n = 1) }
  in
  match Dijkstra.shortest_path ~constraints g ~src:0 ~dst:2 with
  | Some (p, _) -> Alcotest.(check int) "relay banned" 1 (Paths.hops p)
  | None -> Alcotest.fail "no path"

let test_path_cost_matches_dijkstra () =
  let g = fig1 () in
  match Dijkstra.shortest_path g ~src:0 ~dst:2 with
  | None -> Alcotest.fail "no path"
  | Some (p, cost) ->
    check_float "path_cost agrees" cost (Dijkstra.path_cost g p)

let test_wns () =
  let g = fig1 () in
  (* Node b's egress links: wifi to a (1/15), wifi to c (1/30), plc to
     a (1/10); the minimum d is 1/30. *)
  check_float "wns(b)" (1.0 /. 30.0) (Dijkstra.wns g 1);
  let g0 = Multigraph.create ~n_nodes:2 ~n_techs:1 ~edges:[ (0, 1, 0, 0.0) ] in
  Alcotest.(check bool) "wns with no usable egress" true (Dijkstra.wns g0 0 = infinity)

let test_yen_basic () =
  let g =
    Multigraph.create ~n_nodes:4 ~n_techs:1
      ~edges:
        [
          (0, 1, 0, 10.0);
          (1, 3, 0, 10.0);
          (0, 2, 0, 8.0);
          (2, 3, 0, 8.0);
          (0, 3, 0, 3.8);
        ]
  in
  let paths = Yen.k_shortest ~csc:false g ~src:0 ~dst:3 ~k:3 in
  Alcotest.(check int) "three paths" 3 (List.length paths);
  let costs = List.map snd paths in
  Alcotest.(check bool) "sorted" true
    (List.sort compare costs = costs);
  let hops = List.map (fun (p, _) -> Paths.hops p) paths in
  Alcotest.(check (list int)) "hop counts" [ 2; 2; 1 ] hops;
  (* All paths distinct and loopless. *)
  List.iter
    (fun (p, _) -> Alcotest.(check bool) "loopless" true (Paths.is_loopless g p))
    paths

let test_yen_k1_matches_dijkstra () =
  let g = fig1 () in
  let yen = Yen.k_shortest g ~src:0 ~dst:2 ~k:1 in
  match (yen, Dijkstra.shortest_path g ~src:0 ~dst:2) with
  | [ (p, c) ], Some (p', c') ->
    Alcotest.(check bool) "same path" true (Paths.equal p p');
    check_float "same cost" c' c
  | _ -> Alcotest.fail "expected exactly one path"

let test_yen_fewer_than_k () =
  let g = Multigraph.create ~n_nodes:2 ~n_techs:1 ~edges:[ (0, 1, 0, 10.0) ] in
  Alcotest.(check int) "only one exists" 1
    (List.length (Yen.k_shortest g ~src:0 ~dst:1 ~k:5));
  let g2 = Multigraph.create ~n_nodes:3 ~n_techs:1 ~edges:[ (0, 1, 0, 10.0) ] in
  Alcotest.(check int) "unreachable -> empty" 0
    (List.length (Yen.k_shortest g2 ~src:0 ~dst:2 ~k:5))

let test_yen_multigraph_parallel_edges () =
  (* Two parallel technologies between the same pair are two distinct
     paths for Yen. *)
  let g = fig1 () in
  let paths = Yen.k_shortest g ~src:0 ~dst:1 ~k:5 in
  Alcotest.(check bool) "at least wifi and plc direct" true (List.length paths >= 2);
  let one_hop = List.filter (fun (p, _) -> Paths.hops p = 1) paths in
  Alcotest.(check int) "both direct links found" 2 (List.length one_hop)

(* Property: Yen's costs are consistent with path_cost, and paths are
   distinct. *)
let random_graph rng =
  let n = 4 + Rng.int rng 5 in
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Rng.float rng < 0.5 then
        edges := (u, v, Rng.int rng 2, 5.0 +. Rng.uniform rng 0.0 95.0) :: !edges
    done
  done;
  Multigraph.create ~n_nodes:n ~n_techs:2 ~edges:!edges

let prop_yen_consistent =
  QCheck.Test.make ~name:"yen costs match path_cost; paths distinct and loopless"
    ~count:100
    QCheck.(int_bound 100000)
    (fun seed ->
      let rng = Rng.create seed in
      let g = random_graph rng in
      let src = 0 and dst = Multigraph.n_nodes g - 1 in
      let paths = Yen.k_shortest g ~src ~dst ~k:5 in
      List.for_all
        (fun (p, c) ->
          Paths.is_loopless g p
          && Float.abs (Dijkstra.path_cost g p -. c) < 1e-9
          && Paths.src g p = src && Paths.dst g p = dst)
        paths
      &&
      let keys = List.map (fun (p, _) -> p.Paths.links) paths in
      List.length (List.sort_uniq compare keys) = List.length keys)

let prop_dijkstra_no_worse_than_yen_head =
  QCheck.Test.make ~name:"dijkstra returns the cheapest of yen's paths" ~count:100
    QCheck.(int_bound 100000)
    (fun seed ->
      let rng = Rng.create (seed + 7) in
      let g = random_graph rng in
      let src = 0 and dst = Multigraph.n_nodes g - 1 in
      match (Dijkstra.shortest_path g ~src ~dst, Yen.k_shortest g ~src ~dst ~k:4) with
      | None, [] -> true
      | Some (_, c), (_, c') :: _ -> c <= c' +. 1e-9
      | Some _, [] | None, _ :: _ -> false)

let () =
  Alcotest.run "graph"
    [
      ( "multigraph",
        [
          Alcotest.test_case "create basics" `Quick test_create_basic;
          Alcotest.test_case "create errors" `Quick test_create_errors;
          Alcotest.test_case "d metric" `Quick test_d_metric;
          Alcotest.test_case "adjacency" `Quick test_adjacency;
          Alcotest.test_case "with_capacities" `Quick test_with_capacities;
        ] );
      ( "paths",
        [ Alcotest.test_case "basics" `Quick test_paths_basics ] );
      ( "dijkstra",
        [
          Alcotest.test_case "figure-1 shortest" `Quick test_dijkstra_fig1;
          Alcotest.test_case "CSC prefers alternation" `Quick
            test_dijkstra_csc_prefers_alternation;
          Alcotest.test_case "csc on/off" `Quick test_dijkstra_no_csc;
          Alcotest.test_case "unreachable" `Quick test_dijkstra_unreachable;
          Alcotest.test_case "zero capacity avoided" `Quick
            test_dijkstra_zero_capacity_avoided;
          Alcotest.test_case "banned links/nodes" `Quick test_dijkstra_banned;
          Alcotest.test_case "path_cost agrees" `Quick test_path_cost_matches_dijkstra;
          Alcotest.test_case "wns" `Quick test_wns;
        ] );
      ( "yen",
        [
          Alcotest.test_case "basic 3 paths" `Quick test_yen_basic;
          Alcotest.test_case "k=1 matches dijkstra" `Quick test_yen_k1_matches_dijkstra;
          Alcotest.test_case "fewer than k" `Quick test_yen_fewer_than_k;
          Alcotest.test_case "parallel technologies" `Quick
            test_yen_multigraph_parallel_edges;
          QCheck_alcotest.to_alcotest prop_yen_consistent;
          QCheck_alcotest.to_alcotest prop_dijkstra_no_worse_than_yen_head;
        ] );
    ]
