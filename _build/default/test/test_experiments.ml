(* Smoke and invariant tests for the experiment modules: each figure
   runner executes at tiny scale, produces structurally sound data and
   prints without raising. These are integration tests of the whole
   stack (topology -> routing -> control -> baselines -> engine). *)

let quiet f =
  (* The printers write to stdout; capture and discard. *)
  let devnull = open_out "/dev/null" in
  let saved = Unix.dup Unix.stdout in
  flush stdout;
  Unix.dup2 (Unix.descr_of_out_channel devnull) Unix.stdout;
  let restore () =
    flush stdout;
    Unix.dup2 saved Unix.stdout;
    Unix.close saved;
    close_out devnull
  in
  (try f () with e -> restore (); raise e);
  restore ()

let test_common_flows () =
  let rng = Rng.create 1 in
  let inst = Common.generate Common.Residential rng in
  for _ = 1 to 50 do
    let s, d = Common.random_flow rng inst in
    Alcotest.(check bool) "src is dual" true (List.mem s (Builder.dual_nodes inst));
    Alcotest.(check bool) "distinct" true (s <> d)
  done;
  let flows = Common.random_flows rng inst ~n:3 in
  Alcotest.(check int) "three flows" 3 (List.length flows);
  let srcs = List.map fst flows in
  Alcotest.(check int) "distinct sources" 3 (List.length (List.sort_uniq compare srcs))

let test_fig4_structure () =
  let d = Fig4.run ~runs:4 ~seed:1 Common.Residential in
  Alcotest.(check int) "schemes recorded" (List.length Fig4.schemes)
    (List.length d.Fig4.samples);
  List.iter
    (fun (_, xs) ->
      Alcotest.(check int) "one sample per run" 4 (List.length xs);
      List.iter
        (fun v -> Alcotest.(check bool) "finite" true (Float.is_finite v && v >= 0.0))
        xs)
    d.Fig4.samples;
  quiet (fun () -> Fig4.print d)

let test_fig5_structure () =
  let d = Fig5.run ~runs:10 ~seed:2 Common.Residential in
  Alcotest.(check bool) "worst set bounded" true (d.Fig5.worst_count <= 2 + (10 / 5));
  List.iter
    (fun r -> Alcotest.(check bool) "positive ratio" true (r > 0.0))
    d.Fig5.ratios;
  quiet (fun () -> Fig5.print d)

let test_fig6_ratios_bounded () =
  let d = Fig6.run ~runs:4 ~seed:3 Common.Residential in
  List.iter
    (fun (nm, xs) ->
      List.iter
        (fun r ->
          if r > 1.10 then
            Alcotest.failf "%s achieves %.2f of the exact optimum" nm r)
        xs)
    d.Fig6.ratios;
  (* conservative opt is a real optimum: it should be close to 1. *)
  (match List.assoc_opt "conservative opt" d.Fig6.ratios with
  | Some (_ :: _ as xs) ->
    Alcotest.(check bool) "conservative opt near 1" true (Stats.mean xs > 0.8)
  | _ -> Alcotest.fail "missing conservative opt");
  quiet (fun () -> Fig6.print d)

let test_fig7_structure () =
  let d = Fig7.run ~runs:3 ~seed:4 Common.Residential in
  List.iter
    (fun (nm, xs) ->
      List.iter
        (fun r ->
          if r > 1.05 then Alcotest.failf "%s utility ratio %.2f > 1" nm r)
        xs)
    d.Fig7.ratios;
  quiet (fun () -> Fig7.print d)

let test_convergence_ordering () =
  let d = Convergence.run ~runs:4 ~seed:5 ~bp_slots:6000 Common.Residential in
  (match (d.Convergence.empower_warm, d.Convergence.backpressure) with
  | _ :: _, _ :: _ ->
    Alcotest.(check bool) "EMPoWER warm converges much faster than backpressure"
      true
      (Stats.mean d.Convergence.empower_warm
      < Stats.mean d.Convergence.backpressure)
  | _ -> Alcotest.fail "missing data");
  quiet (fun () -> Convergence.print d)

let test_fig9_narrative () =
  let d = Fig9.run ~time_scale:0.02 () in
  (* Multipath beats the best single path before the contender. *)
  Alcotest.(check bool) "multipath gain" true
    (d.Fig9.mean_before > d.Fig9.best_single_path *. 1.1);
  (* During contention the flow loses some rate but stays alive. *)
  Alcotest.(check bool) "contention costs throughput" true
    (d.Fig9.mean_during < d.Fig9.mean_before);
  Alcotest.(check bool) "still alive during contention" true (d.Fig9.mean_during > 5.0);
  (* And it recovers afterwards. *)
  Alcotest.(check bool) "recovers" true
    (d.Fig9.mean_after > d.Fig9.mean_during);
  quiet (fun () -> Fig9.print d)

let test_fig10_structure () =
  let d = Fig10.run ~pairs:6 ~seed:10 () in
  List.iter
    (fun (_, xs) ->
      List.iter
        (fun r -> Alcotest.(check bool) "ratio finite" true (Float.is_finite r && r >= 0.0))
        xs)
    d.Fig10.ratios;
  List.iter
    (fun v -> Alcotest.(check bool) "early fraction sane" true (v > 0.0 && v < 2.5))
    d.Fig10.early;
  quiet (fun () -> Fig10.print d)

let test_table1_tiny_short () =
  (* Only the quick rows at tiny scale: completion times positive and
     short files faster than long ones. *)
  let d = Table1.run ~seed:12 ~repeats:2 ~long_scale:0.005 () in
  let (cc_tiny, _) = d.Table1.tiny and (cc_short, _) = d.Table1.short in
  Alcotest.(check bool) "tiny completes" true (cc_tiny.Table1.runs > 0);
  Alcotest.(check bool) "short completes" true (cc_short.Table1.runs > 0);
  Alcotest.(check bool) "tiny faster than short" true
    (cc_tiny.Table1.mean < cc_short.Table1.mean);
  quiet (fun () -> Table1.print d)

let test_fig12_tcp_works () =
  let d = Fig12.run ~seed:13 ~phase_seconds:60.0 () in
  Alcotest.(check bool) "EMPoWER TCP delivers" true (d.Fig12.mean_empower > 1.0);
  Alcotest.(check bool) "single path TCP delivers" true (d.Fig12.mean_sp > 1.0);
  quiet (fun () -> Fig12.print d)

let test_runner_helpers () =
  let inst = Testbed.generate (Rng.create 4242) in
  let net = Runner.network inst Schemes.Empower in
  let routes, rates =
    Runner.routes_and_rates net Schemes.Empower ~src:0 ~dst:12
  in
  Alcotest.(check int) "rates match routes" (List.length routes) (List.length rates);
  let spec = Runner.flow_spec ~src:0 ~dst:12 (routes, rates) in
  Alcotest.(check bool) "spec wired" true (spec.Engine.src = 0 && spec.Engine.dst = 12)

let test_ablation_n_monotone () =
  (* The routing-level invariant: the n=5 exploration tree contains
     every n=1 branch, so its best combination is at least as good.
     (The CC allocation on top adds controller noise, so we check the
     routing totals.) *)
  for seed = 1 to 10 do
    let inst = Residential.generate (Rng.create (900 + seed)) in
    let g = Builder.graph inst Builder.Hybrid in
    let dom = Domain.of_instance inst Builder.Hybrid g in
    let t1 = (Multipath.find ~n:1 g dom ~src:0 ~dst:9).Multipath.total_rate in
    let t5 = (Multipath.find ~n:5 g dom ~src:0 ~dst:9).Multipath.total_rate in
    if t5 < t1 -. 1e-6 then
      Alcotest.failf "seed %d: n=5 total %.3f < n=1 total %.3f" seed t5 t1
  done;
  let d = Ablations.n_shortest ~runs:4 ~seed:21 () in
  quiet (fun () -> Ablations.print d)

let test_ablation_delta_monotone () =
  let d = Ablations.delta ~runs:6 ~seed:23 () in
  let rates = List.map (fun p -> p.Ablations.mean_rate) d.Ablations.points in
  (* Throughput decreases as the margin grows. *)
  let rec decreasing = function
    | a :: (b :: _ as tl) -> a >= b -. 0.3 && decreasing tl
    | _ -> true
  in
  Alcotest.(check bool) "monotone in delta" true (decreasing rates)

let () =
  Alcotest.run "experiments"
    [
      ( "common",
        [ Alcotest.test_case "random flows" `Quick test_common_flows ] );
      ( "simulation-figures",
        [
          Alcotest.test_case "fig4 structure" `Quick test_fig4_structure;
          Alcotest.test_case "fig5 structure" `Quick test_fig5_structure;
          Alcotest.test_case "fig6 bounded by optimal" `Quick test_fig6_ratios_bounded;
          Alcotest.test_case "fig7 structure" `Quick test_fig7_structure;
          Alcotest.test_case "convergence ordering" `Quick test_convergence_ordering;
        ] );
      ( "testbed-figures",
        [
          Alcotest.test_case "fig9 narrative" `Quick test_fig9_narrative;
          Alcotest.test_case "fig10 structure" `Quick test_fig10_structure;
          Alcotest.test_case "table1 tiny/short" `Quick test_table1_tiny_short;
          Alcotest.test_case "fig12 tcp" `Quick test_fig12_tcp_works;
          Alcotest.test_case "runner helpers" `Quick test_runner_helpers;
        ] );
      ( "ablations",
        [
          Alcotest.test_case "n monotone" `Quick test_ablation_n_monotone;
          Alcotest.test_case "delta monotone" `Quick test_ablation_delta_monotone;
        ] );
    ]
