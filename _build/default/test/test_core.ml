(* Tests for the Empower facade and the traffic workloads. *)

let check_float ?(eps = 1e-6) msg expected actual =
  if Float.abs (expected -. actual) > eps then
    Alcotest.failf "%s: expected %.6f, got %.6f" msg expected actual

let fig1_net () =
  Empower.of_edges ~n_nodes:3 ~n_techs:2
    [ (0, 1, 0, 15.0); (1, 2, 0, 30.0); (0, 1, 1, 10.0) ]

let test_of_edges () =
  let net = fig1_net () in
  Alcotest.(check int) "nodes" 3 (Multigraph.n_nodes net.Empower.g);
  Alcotest.(check int) "links" 6 (Multigraph.num_links net.Empower.g)

let test_of_instance () =
  let inst = Residential.generate (Rng.create 1) in
  let net = Empower.of_instance inst Builder.Hybrid in
  Alcotest.(check int) "nodes" 10 (Multigraph.n_nodes net.Empower.g);
  Alcotest.(check int) "domains cover links" (Multigraph.num_links net.Empower.g)
    (Domain.num_links net.Empower.dom)

let test_plan () =
  let net = fig1_net () in
  let plan = Empower.plan net ~src:0 ~dst:2 in
  Alcotest.(check int) "two routes" 2
    (List.length plan.Empower.combination.Multipath.paths);
  check_float ~eps:0.01 "combined rate" (50.0 /. 3.0)
    plan.Empower.combination.Multipath.total_rate

let test_allocate_fig1 () =
  let net = fig1_net () in
  let alloc = Empower.allocate net ~flows:[ (0, 2) ] in
  check_float ~eps:0.4 "flow rate" (50.0 /. 3.0) alloc.Empower.flow_rates.(0);
  Alcotest.(check int) "route rates per flow" 2
    (Array.length alloc.Empower.route_rates.(0));
  check_float ~eps:0.5 "rates sum to flow rate" alloc.Empower.flow_rates.(0)
    (Array.fold_left ( +. ) 0.0 alloc.Empower.route_rates.(0))

let test_allocate_multi_flow () =
  let net = fig1_net () in
  (* Two flows on the same endpoints share fairly. *)
  let alloc = Empower.allocate net ~flows:[ (0, 2); (0, 2) ] in
  let a = alloc.Empower.flow_rates.(0) and b = alloc.Empower.flow_rates.(1) in
  Alcotest.(check bool) "roughly fair" true (Float.abs (a -. b) < 2.0);
  Alcotest.(check bool) "sum near capacity" true (a +. b > 14.0 && a +. b < 18.0)

let test_allocate_unreachable_flow () =
  let net =
    Empower.of_edges ~n_nodes:3 ~n_techs:1 [ (0, 1, 0, 10.0) ]
  in
  let alloc = Empower.allocate net ~flows:[ (0, 2) ] in
  check_float "zero rate" 0.0 alloc.Empower.flow_rates.(0);
  Alcotest.(check int) "empty plan" 0
    (List.length alloc.Empower.plans.(0).Empower.combination.Multipath.paths)

let test_allocate_delta () =
  let net = fig1_net () in
  let alloc = Empower.allocate ~delta:0.3 net ~flows:[ (0, 2) ] in
  Alcotest.(check bool) "margin respected" true
    (alloc.Empower.flow_rates.(0) < 13.0)

let test_flow_specs_and_simulate () =
  let net = fig1_net () in
  let alloc = Empower.allocate net ~flows:[ (0, 2) ] in
  let specs = Empower.flow_specs_of_allocation alloc in
  Alcotest.(check int) "one spec" 1 (List.length specs);
  let res = Empower.simulate ~seed:5 net ~flows:specs ~duration:20.0 in
  let gp = float_of_int res.Engine.flows.(0).Engine.received_bytes *. 8e-6 /. 20.0 in
  Alcotest.(check bool) "simulation delivers" true (gp > 12.0)

let test_flow_specs_skip_unreachable () =
  let net = Empower.of_edges ~n_nodes:3 ~n_techs:1 [ (0, 1, 0, 10.0) ] in
  let alloc = Empower.allocate net ~flows:[ (0, 2) ] in
  Alcotest.(check int) "no specs" 0
    (List.length (Empower.flow_specs_of_allocation alloc))

(* --- Workload --- *)

let test_workload_describe () =
  Alcotest.(check string) "saturated" "saturated UDP" (Workload.describe Workload.Saturated);
  Alcotest.(check bool) "file mentions size" true
    (String.length (Workload.describe (Workload.File { bytes = 5_000_000 })) > 0)

let test_workload_total_bytes () =
  Alcotest.(check (option int)) "saturated" None (Workload.total_bytes Workload.Saturated);
  Alcotest.(check (option int)) "file" (Some 100)
    (Workload.total_bytes (Workload.File { bytes = 100 }));
  Alcotest.(check (option int)) "poisson" (Some 500)
    (Workload.total_bytes
       (Workload.Poisson_files { bytes = 100; mean_gap_s = 1.0; count = 5 }))

let test_workload_arrivals () =
  let rng = Rng.create 3 in
  let times =
    Workload.arrival_times rng
      (Workload.Poisson_files { bytes = 1; mean_gap_s = 10.0; count = 50 })
  in
  Alcotest.(check int) "count" 50 (List.length times);
  let rec increasing = function
    | a :: (b :: _ as tl) -> a <= b && increasing tl
    | _ -> true
  in
  Alcotest.(check bool) "sorted" true (increasing times);
  (* Mean gap close to 10. *)
  let last = List.nth times 49 in
  Alcotest.(check bool) "mean gap plausible" true (last > 250.0 && last < 900.0)

let () =
  Alcotest.run "core"
    [
      ( "network",
        [
          Alcotest.test_case "of_edges" `Quick test_of_edges;
          Alcotest.test_case "of_instance" `Quick test_of_instance;
        ] );
      ( "facade",
        [
          Alcotest.test_case "plan" `Quick test_plan;
          Alcotest.test_case "allocate fig1" `Quick test_allocate_fig1;
          Alcotest.test_case "allocate multi-flow" `Quick test_allocate_multi_flow;
          Alcotest.test_case "allocate unreachable" `Quick
            test_allocate_unreachable_flow;
          Alcotest.test_case "allocate with delta" `Quick test_allocate_delta;
          Alcotest.test_case "specs + simulate" `Quick test_flow_specs_and_simulate;
          Alcotest.test_case "specs skip unreachable" `Quick
            test_flow_specs_skip_unreachable;
        ] );
      ( "workload",
        [
          Alcotest.test_case "describe" `Quick test_workload_describe;
          Alcotest.test_case "total bytes" `Quick test_workload_total_bytes;
          Alcotest.test_case "poisson arrivals" `Quick test_workload_arrivals;
        ] );
    ]
