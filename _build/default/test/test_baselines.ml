(* Tests for the fluid MAC model, rate regions, the optimal solvers,
   backpressure dynamics, brute force, and the evaluation schemes. *)

let check_float ?(eps = 1e-6) msg expected actual =
  if Float.abs (expected -. actual) > eps then
    Alcotest.failf "%s: expected %.6f, got %.6f" msg expected actual

let fig1 () =
  let g =
    Multigraph.create ~n_nodes:3 ~n_techs:2
      ~edges:[ (0, 1, 0, 15.0); (1, 2, 0, 30.0); (0, 1, 1, 10.0) ]
  in
  (g, Domain.single_domain_per_tech g)

let fig1_routes g =
  [ Paths.of_links g [ 4; 2 ]; Paths.of_links g [ 0; 2 ] ]

(* --- Fluid --- *)

let test_fluid_feasible_identity () =
  let g, dom = fig1 () in
  let offered = List.combine (fig1_routes g) [ 10.0; 20.0 /. 3.0 ] in
  match Fluid.goodput g dom ~offered with
  | [ a; b ] ->
    check_float ~eps:1e-3 "route1 delivered" 10.0 a;
    check_float ~eps:1e-3 "route2 delivered" (20.0 /. 3.0) b
  | _ -> Alcotest.fail "expected two rates"

let test_fluid_overload_scales_down () =
  let g, dom = fig1 () in
  let offered = List.combine (fig1_routes g) [ 10.0; 20.0 ] in
  match Fluid.goodput g dom ~offered with
  | [ a; b ] ->
    Alcotest.(check bool) "throttled" true (a +. b < 16.7);
    Alcotest.(check bool) "nonzero" true (a > 0.0 && b > 0.0)
  | _ -> Alcotest.fail "expected two rates"

let test_fluid_single_saturated_link () =
  let g = Multigraph.create ~n_nodes:2 ~n_techs:1 ~edges:[ (0, 1, 0, 10.0) ] in
  let dom = Domain.single_domain_per_tech g in
  let p = Paths.of_links g [ 0 ] in
  (match Fluid.goodput g dom ~offered:[ (p, 50.0) ] with
  | [ d ] -> check_float ~eps:1e-3 "capped at capacity" 10.0 d
  | _ -> Alcotest.fail "one rate");
  let airtime = Fluid.link_airtime g dom ~offered:[ (p, 50.0) ] in
  check_float ~eps:1e-3 "airtime saturates" 1.0 airtime.(0)

let test_fluid_multihop_collapse () =
  (* Two-hop same-medium path overloaded: hop 1 steals airtime from
     hop 2 and goodput falls below the fair share (the congestion
     collapse the controller exists to avoid). *)
  let g =
    Multigraph.create ~n_nodes:3 ~n_techs:1 ~edges:[ (0, 1, 0, 20.0); (1, 2, 0, 20.0) ]
  in
  let dom = Domain.single_domain_per_tech g in
  let p = Paths.of_links g [ 0; 2 ] in
  let best = Update.path_rate g dom p in
  (match Fluid.goodput g dom ~offered:[ (p, 20.0) ] with
  | [ d ] -> Alcotest.(check bool) "collapsed below R(P)" true (d < best -. 0.5)
  | _ -> Alcotest.fail "one rate");
  match Fluid.goodput g dom ~offered:[ (p, best) ] with
  | [ d ] -> check_float ~eps:0.05 "R(P) flows through" best d
  | _ -> Alcotest.fail "one rate"

(* --- Rate_region / Opt_solver --- *)

let test_lp_fig1_optimal () =
  let g, dom = fig1 () in
  check_float ~eps:1e-4 "exact" (50.0 /. 3.0)
    (Opt_solver.max_throughput Rate_region.Exact g dom ~src:0 ~dst:2);
  check_float ~eps:1e-4 "conservative same here" (50.0 /. 3.0)
    (Opt_solver.max_throughput Rate_region.Conservative g dom ~src:0 ~dst:2)

let test_lp_single_link () =
  let g = Multigraph.create ~n_nodes:2 ~n_techs:1 ~edges:[ (0, 1, 0, 42.0) ] in
  let dom = Domain.single_domain_per_tech g in
  check_float ~eps:1e-6 "trivial max flow" 42.0
    (Opt_solver.max_throughput Rate_region.Exact g dom ~src:0 ~dst:1)

let test_lp_unreachable () =
  let g = Multigraph.create ~n_nodes:3 ~n_techs:1 ~edges:[ (0, 1, 0, 10.0) ] in
  let dom = Domain.single_domain_per_tech g in
  check_float "no path" 0.0
    (Opt_solver.max_throughput Rate_region.Exact g dom ~src:0 ~dst:2)

let test_lp_delta_scales () =
  let g, dom = fig1 () in
  let full = Opt_solver.max_throughput Rate_region.Exact g dom ~src:0 ~dst:2 in
  let margin =
    Opt_solver.max_throughput ~delta:0.3 Rate_region.Exact g dom ~src:0 ~dst:2
  in
  check_float ~eps:1e-4 "scaled by 1-delta" (0.7 *. full) margin

let test_conservative_below_exact () =
  (* A chain where I_l neighborhoods are larger than cliques:
     conservative must not exceed exact. Five-hop chain with
     range-limited interference. *)
  let n = 6 in
  let edges = List.init (n - 1) (fun i -> (i, i + 1, 0, 10.0)) in
  let g = Multigraph.create ~n_nodes:n ~n_techs:1 ~edges in
  let positions =
    Array.init n (fun i -> { Geometry.x = float_of_int i *. 20.0; y = 0.0 })
  in
  let dom =
    Domain.standard ~cs_factor:1.0 g
      ~techs:[| Technology.wifi ~index:0 ~channel:1 |]
      ~positions ~panels:(Array.make n 0)
  in
  let exact = Opt_solver.max_throughput Rate_region.Exact g dom ~src:0 ~dst:(n - 1) in
  let cons =
    Opt_solver.max_throughput Rate_region.Conservative g dom ~src:0 ~dst:(n - 1)
  in
  Alcotest.(check bool) "conservative <= exact" true (cons <= exact +. 1e-9);
  Alcotest.(check bool) "both positive" true (cons > 0.0)

let test_max_utility_fair_split () =
  (* Two flows on one shared 12 Mbps link: proportional fairness
     splits evenly. *)
  let g = Multigraph.create ~n_nodes:3 ~n_techs:1 ~edges:[ (0, 1, 0, 12.0); (1, 2, 0, 100.0) ] in
  let dom =
    Domain.create g ~interferes:(fun a b ->
        (Multigraph.link g a).Multigraph.edge = (Multigraph.link g b).Multigraph.edge)
  in
  let xs =
    Opt_solver.max_utility Rate_region.Exact g dom ~flows:[ (0, 1); (0, 1) ]
  in
  check_float ~eps:0.1 "even split a" 6.0 xs.(0);
  check_float ~eps:0.1 "even split b" 6.0 xs.(1)

let test_max_utility_matches_cc () =
  (* The distributed controller should reach (a neighborhood of) the
     Frank-Wolfe optimum on Figure 1. *)
  let g, dom = fig1 () in
  let xs = Opt_solver.max_utility Rate_region.Conservative g dom ~flows:[ (0, 2) ] in
  check_float ~eps:0.05 "FW finds 16.67" (50.0 /. 3.0) xs.(0)

(* --- Backpressure --- *)

let test_backpressure_near_optimal () =
  let g, dom = fig1 () in
  let r = Backpressure.run ~slots:10000 g dom ~flows:[ (0, 2) ] in
  Alcotest.(check bool) "close to 16.67" true
    (r.Backpressure.flow_rates.(0) > 15.0 && r.Backpressure.flow_rates.(0) < 17.5);
  match r.Backpressure.convergence_slot with
  | None -> Alcotest.fail "did not settle"
  | Some s -> Alcotest.(check bool) "slow-ish but settles" true (s > 10)

let test_backpressure_two_flows () =
  let g = Multigraph.create ~n_nodes:2 ~n_techs:1 ~edges:[ (0, 1, 0, 10.0) ] in
  let dom = Domain.single_domain_per_tech g in
  let r = Backpressure.run ~slots:6000 g dom ~flows:[ (0, 1); (0, 1) ] in
  check_float ~eps:1.0 "fair half a" 5.0 r.Backpressure.flow_rates.(0);
  check_float ~eps:1.0 "fair half b" 5.0 r.Backpressure.flow_rates.(1)

(* --- Brute force --- *)

let test_brute_force_matches_path_rate () =
  let g, dom = fig1 () in
  let p = Paths.of_links g [ 4; 2 ] in
  let bf = Brute_force.best_rate_on_path ~step:0.5 g dom p in
  check_float ~eps:0.6 "close to R(P)" (Update.path_rate g dom p) bf

let test_sp_bf_unreachable () =
  let g = Multigraph.create ~n_nodes:3 ~n_techs:1 ~edges:[ (0, 1, 0, 10.0) ] in
  let dom = Domain.single_domain_per_tech g in
  check_float "no route -> 0" 0.0 (Brute_force.sp_bf g dom ~src:0 ~dst:2)

(* --- Schemes --- *)

let residential_case seed =
  let rng = Rng.create seed in
  (Residential.generate rng, Rng.split rng)

let test_schemes_metadata () =
  Alcotest.(check int) "eight schemes" 8 (List.length Schemes.all);
  Alcotest.(check string) "name" "MP-w/o-CC" (Schemes.name Schemes.Mp_wo_cc);
  Alcotest.(check bool) "wo-cc has no cc" false (Schemes.uses_cc Schemes.Mp_wo_cc);
  Alcotest.(check bool) "mwifi scenario" true
    (Schemes.scenario Schemes.Mp_mwifi = Builder.Multi_wifi)

let test_schemes_ordering_holds () =
  (* On average over a few instances: EMPoWER >= SP >= SP-WiFi, and
     EMPoWER >= MP-2bp. *)
  let sums = Hashtbl.create 8 in
  let add s v =
    Hashtbl.replace sums s ((try Hashtbl.find sums s with Not_found -> 0.0) +. v)
  in
  for seed = 1 to 8 do
    let inst, rng = residential_case seed in
    let flow = ((fun (a, _) -> a) (0, 0), 9) in
    ignore flow;
    let flows = [ (0, 9) ] in
    List.iter
      (fun s -> add s (Schemes.evaluate (Rng.copy rng) inst s ~flows).(0))
      [ Schemes.Empower; Schemes.Sp; Schemes.Sp_wifi; Schemes.Mp_2bp ]
  done;
  let get s = Hashtbl.find sums s in
  Alcotest.(check bool) "EMPoWER >= SP" true
    (get Schemes.Empower >= get Schemes.Sp -. 0.5);
  Alcotest.(check bool) "SP > SP-WiFi" true (get Schemes.Sp > get Schemes.Sp_wifi);
  Alcotest.(check bool) "EMPoWER >= MP-2bp" true
    (get Schemes.Empower >= get Schemes.Mp_2bp -. 0.5)

let test_schemes_cc_beats_no_cc_multipath () =
  let worse = ref 0 in
  for seed = 1 to 6 do
    let inst, rng = residential_case (seed + 50) in
    let flows = [ (0, 9) ] in
    let e = (Schemes.evaluate (Rng.copy rng) inst Schemes.Empower ~flows).(0) in
    let w = (Schemes.evaluate (Rng.copy rng) inst Schemes.Mp_wo_cc ~flows).(0) in
    if e < w -. 0.5 then incr worse
  done;
  Alcotest.(check bool) "CC at least as good in most cases" true (!worse <= 1)

let test_schemes_unreachable_flow () =
  (* A WiFi-only destination too far for WiFi: SP-WiFi gets zero. *)
  let inst, rng = residential_case 3 in
  let rates = Schemes.evaluate (Rng.copy rng) inst Schemes.Sp_wifi ~flows:[ (0, 9) ] in
  Alcotest.(check bool) "finite" true (rates.(0) >= 0.0)

let test_schemes_feasible_delivery () =
  (* Delivered rates respect the exact-region optimum. *)
  for seed = 10 to 14 do
    let inst, rng = residential_case seed in
    let g = Builder.graph inst Builder.Hybrid in
    let dom = Domain.of_instance inst Builder.Hybrid g in
    let opt = Opt_solver.max_throughput Rate_region.Exact g dom ~src:0 ~dst:9 in
    let e = (Schemes.evaluate (Rng.copy rng) inst Schemes.Empower ~flows:[ (0, 9) ]).(0) in
    if e > opt *. 1.02 +. 0.2 then
      Alcotest.failf "seed %d: delivered %.2f above optimal %.2f" seed e opt
  done

let test_schemes_noise_changes_little () =
  let inst, rng = residential_case 7 in
  let opts = { Schemes.default_options with estimate_noise = 0.02 } in
  let clean = (Schemes.evaluate (Rng.copy rng) inst Schemes.Empower ~flows:[ (0, 9) ]).(0) in
  let noisy =
    (Schemes.evaluate ~opts (Rng.copy rng) inst Schemes.Empower ~flows:[ (0, 9) ]).(0)
  in
  Alcotest.(check bool) "within 20%" true
    (Float.abs (noisy -. clean) < 0.2 *. Float.max clean 1.0)

(* End-to-end optimality: the distributed controller on EMPoWER's
   routes should reach ~the conservative optimum (same constraint
   set, free routing) in most single-flow cases; never exceed it. *)
let prop_cc_tracks_conservative_opt =
  QCheck.Test.make ~name:"controller ~matches conservative opt (single flow)"
    ~count:10
    QCheck.(int_bound 10000)
    (fun seed ->
      let inst = Residential.generate (Rng.create (seed + 100)) in
      let g = Builder.graph inst Builder.Hybrid in
      let dom = Domain.of_instance inst Builder.Hybrid g in
      let comb = Multipath.find g dom ~src:0 ~dst:9 in
      match Multipath.routes comb with
      | [] -> true
      | routes ->
        let p = Problem.make g dom ~flows:[ routes ] in
        let x_init = Array.of_list (List.map snd comb.Multipath.paths) in
        let res = Multi_cc.solve ~x_init ~slots:3000 p in
        let cc = res.Cc_result.flow_rates.(0) in
        let opt =
          Opt_solver.max_throughput Rate_region.Conservative g dom ~src:0 ~dst:9
        in
        (* never above; usually close (route preselection + fixed step
           can cost some). *)
        cc <= (opt *. 1.03) +. 0.3 && cc >= 0.6 *. opt -. 0.3)

let prop_schemes_nonnegative =
  QCheck.Test.make ~name:"scheme rates are nonnegative and finite" ~count:10
    QCheck.(int_bound 10000)
    (fun seed ->
      let inst, rng = residential_case seed in
      List.for_all
        (fun s ->
          let r = Schemes.evaluate (Rng.copy rng) inst s ~flows:[ (0, 9) ] in
          Array.for_all (fun v -> Float.is_finite v && v >= 0.0) r)
        Schemes.all)

let () =
  Alcotest.run "baselines"
    [
      ( "fluid",
        [
          Alcotest.test_case "feasible passes through" `Quick
            test_fluid_feasible_identity;
          Alcotest.test_case "overload scales down" `Quick
            test_fluid_overload_scales_down;
          Alcotest.test_case "saturated link capped" `Quick
            test_fluid_single_saturated_link;
          Alcotest.test_case "multihop collapse" `Quick test_fluid_multihop_collapse;
        ] );
      ( "opt-solver",
        [
          Alcotest.test_case "figure-1 optimum" `Quick test_lp_fig1_optimal;
          Alcotest.test_case "single link" `Quick test_lp_single_link;
          Alcotest.test_case "unreachable" `Quick test_lp_unreachable;
          Alcotest.test_case "delta scaling" `Quick test_lp_delta_scales;
          Alcotest.test_case "conservative <= exact" `Quick
            test_conservative_below_exact;
          Alcotest.test_case "utility fair split" `Quick test_max_utility_fair_split;
          Alcotest.test_case "FW matches CC optimum" `Quick test_max_utility_matches_cc;
        ] );
      ( "backpressure",
        [
          Alcotest.test_case "near optimal" `Quick test_backpressure_near_optimal;
          Alcotest.test_case "two flows fair" `Quick test_backpressure_two_flows;
        ] );
      ( "brute-force",
        [
          Alcotest.test_case "matches R(P)" `Quick test_brute_force_matches_path_rate;
          Alcotest.test_case "unreachable" `Quick test_sp_bf_unreachable;
        ] );
      ( "schemes",
        [
          Alcotest.test_case "metadata" `Quick test_schemes_metadata;
          Alcotest.test_case "ordering holds" `Quick test_schemes_ordering_holds;
          Alcotest.test_case "CC beats no-CC" `Quick
            test_schemes_cc_beats_no_cc_multipath;
          Alcotest.test_case "unreachable flow" `Quick test_schemes_unreachable_flow;
          Alcotest.test_case "delivery below optimal" `Quick
            test_schemes_feasible_delivery;
          Alcotest.test_case "robust to estimation noise" `Quick
            test_schemes_noise_changes_little;
          QCheck_alcotest.to_alcotest prop_cc_tracks_conservative_opt;
          QCheck_alcotest.to_alcotest prop_schemes_nonnegative;
        ] );
    ]
