(* Tests for technologies, capacity samplers and the capacity
   estimator. *)

let check_float ?(eps = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > eps then
    Alcotest.failf "%s: expected %.6f, got %.6f" msg expected actual

let test_technology_descriptors () =
  let w = Technology.wifi ~index:0 ~channel:1 in
  let p = Technology.plc ~index:1 in
  Alcotest.(check bool) "wifi is wifi" true (Technology.is_wifi w);
  Alcotest.(check bool) "wifi not plc" false (Technology.is_plc w);
  Alcotest.(check bool) "plc is plc" true (Technology.is_plc p);
  check_float "wifi radius" 35.0 w.Technology.conn_radius_m;
  check_float "plc radius" 50.0 p.Technology.conn_radius_m;
  Alcotest.(check string) "wifi name" "wifi1" w.Technology.name;
  Alcotest.(check string) "plc name" "plc" p.Technology.name

let test_technology_sets () =
  Alcotest.(check int) "hybrid = 2 techs" 2 (List.length (Technology.hybrid ()));
  Alcotest.(check int) "single wifi" 1 (List.length (Technology.single_wifi ()));
  Alcotest.(check int) "multi wifi" 2 (List.length (Technology.multi_wifi ()));
  let mw = Technology.multi_wifi () in
  Alcotest.(check bool) "both are wifi" true (List.for_all Technology.is_wifi mw);
  let indexes = List.map (fun t -> t.Technology.index) mw in
  Alcotest.(check (list int)) "dense indexes" [ 0; 1 ] indexes

let test_wifi_out_of_range () =
  let rng = Rng.create 1 in
  for _ = 1 to 50 do
    check_float "beyond radius" 0.0 (Capacity.wifi_capacity rng ~distance_m:36.0)
  done

let test_plc_out_of_range () =
  let rng = Rng.create 2 in
  for _ = 1 to 50 do
    check_float "beyond radius" 0.0 (Capacity.plc_capacity rng ~distance_m:51.0)
  done

let test_capacity_bounds () =
  let rng = Rng.create 3 in
  for _ = 1 to 2000 do
    let d = Rng.uniform rng 0.0 50.0 in
    let w = Capacity.wifi_capacity rng ~distance_m:d in
    let p = Capacity.plc_capacity rng ~distance_m:d in
    if w < 0.0 || w > 100.0 then Alcotest.failf "wifi out of bounds: %f" w;
    if p < 0.0 || p > 100.0 then Alcotest.failf "plc out of bounds: %f" p
  done

let test_wifi_quantized () =
  let rng = Rng.create 4 in
  let steps = Array.to_list Capacity.mcs_steps in
  for _ = 1 to 500 do
    let d = Rng.uniform rng 0.0 35.0 in
    let w = Capacity.wifi_capacity rng ~distance_m:d in
    Alcotest.(check bool) "on MCS ladder" true (List.mem w steps)
  done

let test_wifi_distance_trend () =
  (* Mean capacity at 5 m should clearly beat the mean at 30 m. *)
  let rng = Rng.create 5 in
  let mean_at d =
    Stats.mean (List.init 2000 (fun _ -> Capacity.wifi_capacity rng ~distance_m:d))
  in
  let near = mean_at 5.0 and far = mean_at 30.0 in
  Alcotest.(check bool) "near >> far" true (near > far +. 20.0)

let test_plc_weak_distance_trend () =
  (* PLC decays with distance much more slowly than WiFi: the ratio of
     mean capacity at 30 m vs 5 m should be far higher for PLC. *)
  let rng = Rng.create 6 in
  let mean m d = Stats.mean (List.init 2000 (fun _ -> m rng ~distance_m:d)) in
  let wifi_ratio = mean Capacity.wifi_capacity 30.0 /. mean Capacity.wifi_capacity 5.0 in
  let plc_ratio = mean Capacity.plc_capacity 30.0 /. mean Capacity.plc_capacity 5.0 in
  Alcotest.(check bool) "plc flatter than wifi" true (plc_ratio > wifi_ratio +. 0.2)

let test_equal_wifi_pair () =
  let rng = Rng.create 7 in
  for _ = 1 to 200 do
    let a, b = Capacity.equal_wifi_pair rng ~distance_m:15.0 in
    check_float "channels equal" a b
  done

let test_correlated_wifi_pair () =
  let rng = Rng.create 8 in
  let pairs = List.init 2000 (fun _ -> Capacity.correlated_wifi_pair rng ~distance_m:20.0) in
  let xs = List.map fst pairs and ys = List.map snd pairs in
  let mx = Stats.mean xs and my = Stats.mean ys in
  let cov =
    Stats.mean (List.map2 (fun a b -> (a -. mx) *. (b -. my)) xs ys)
  in
  let corr = cov /. (Stats.stddev xs *. Stats.stddev ys) in
  Alcotest.(check bool) "strong positive correlation" true (corr > 0.5)

let test_estimator_converges () =
  let rng = Rng.create 9 in
  let e = Estimator.create ~mode:Estimator.Active_traffic rng ~initial_capacity:50.0 in
  (* Capacity drops to 20; with 100 ms observations the estimate must
     track within ~1 s. *)
  for i = 1 to 20 do
    Estimator.observe e ~now:(float_of_int i *. 0.1) ~true_capacity:20.0
  done;
  check_float ~eps:2.0 "tracked to 20" 20.0 (Estimator.estimate e)

let test_estimator_probing_slower () =
  let rng_a = Rng.create 10 and rng_b = Rng.create 10 in
  let fast = Estimator.create ~mode:Estimator.Active_traffic rng_a ~initial_capacity:50.0 in
  let slow = Estimator.create ~mode:Estimator.Probing rng_b ~initial_capacity:50.0 in
  for i = 1 to 5 do
    let now = float_of_int i *. 0.1 in
    Estimator.observe fast ~now ~true_capacity:10.0;
    Estimator.observe slow ~now ~true_capacity:10.0
  done;
  Alcotest.(check bool) "active tracks faster" true
    (Float.abs (Estimator.estimate fast -. 10.0)
    < Float.abs (Estimator.estimate slow -. 10.0))

let test_estimator_modes () =
  let rng = Rng.create 11 in
  let e = Estimator.create rng ~initial_capacity:42.0 in
  Alcotest.(check bool) "starts probing" true (Estimator.mode e = Estimator.Probing);
  Estimator.set_mode e Estimator.Active_traffic;
  Alcotest.(check bool) "switched" true (Estimator.mode e = Estimator.Active_traffic);
  Alcotest.(check bool) "probing noisier" true
    (Estimator.relative_error Estimator.Probing
    > Estimator.relative_error Estimator.Active_traffic);
  Alcotest.(check bool) "probing slower" true
    (Estimator.reaction_time Estimator.Probing
    > Estimator.reaction_time Estimator.Active_traffic)

let test_mcs_index () =
  Alcotest.(check int) "zero" 0 (Estimator.mcs_index_of_capacity 0.0);
  Alcotest.(check int) "top" (Array.length Capacity.mcs_steps - 1)
    (Estimator.mcs_index_of_capacity 100.0);
  let idx = Estimator.mcs_index_of_capacity 40.0 in
  check_float ~eps:13.0 "close to 40" 40.0 Capacity.mcs_steps.(idx)

let test_ble () =
  check_float "identity" 73.5 (Estimator.ble_of_capacity 73.5);
  check_float "clamped at 0" 0.0 (Estimator.ble_of_capacity (-3.0))

let prop_estimator_nonnegative =
  QCheck.Test.make ~name:"estimates stay nonnegative" ~count:100
    QCheck.(pair (int_bound 10000) (float_range 0.0 100.0))
    (fun (seed, cap) ->
      let rng = Rng.create seed in
      let e = Estimator.create rng ~initial_capacity:cap in
      let ok = ref true in
      for i = 1 to 50 do
        Estimator.observe e ~now:(float_of_int i) ~true_capacity:(cap /. 2.0);
        if Estimator.estimate e < 0.0 then ok := false
      done;
      !ok)

let () =
  Alcotest.run "phy"
    [
      ( "technology",
        [
          Alcotest.test_case "descriptors" `Quick test_technology_descriptors;
          Alcotest.test_case "scenario sets" `Quick test_technology_sets;
        ] );
      ( "capacity",
        [
          Alcotest.test_case "wifi out of range" `Quick test_wifi_out_of_range;
          Alcotest.test_case "plc out of range" `Quick test_plc_out_of_range;
          Alcotest.test_case "bounds" `Quick test_capacity_bounds;
          Alcotest.test_case "wifi quantized" `Quick test_wifi_quantized;
          Alcotest.test_case "wifi distance trend" `Quick test_wifi_distance_trend;
          Alcotest.test_case "plc weak distance trend" `Quick
            test_plc_weak_distance_trend;
          Alcotest.test_case "equal wifi pair" `Quick test_equal_wifi_pair;
          Alcotest.test_case "correlated wifi pair" `Quick test_correlated_wifi_pair;
        ] );
      ( "estimator",
        [
          Alcotest.test_case "converges" `Quick test_estimator_converges;
          Alcotest.test_case "probing slower" `Quick test_estimator_probing_slower;
          Alcotest.test_case "modes" `Quick test_estimator_modes;
          Alcotest.test_case "mcs index" `Quick test_mcs_index;
          Alcotest.test_case "ble" `Quick test_ble;
          QCheck_alcotest.to_alcotest prop_estimator_nonnegative;
        ] );
    ]
