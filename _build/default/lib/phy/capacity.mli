(** Link-capacity samplers fitted to the paper's testbed measurements.

    The simulations of Section 5 sample WiFi and PLC link capacities
    "from a distribution close to the capacity distributions measured
    on our real testbed" (reported in the tech report and in the
    Electri-Fi measurement study [38]). The salient, behaviour-carrying
    properties we reproduce are:

    - both mediums peak around 100 Mbps (comparable aggregate capacity,
      Section 6.1);
    - WiFi capacity decays steeply with distance and is typically the
      better medium at short range;
    - PLC capacity is only weakly correlated with geometric distance
      (wiring topology dominates), giving it a fat mid-range tail and
      making it the better medium for many long-range pairs — this is
      the medium-diversity effect behind the coverage gains;
    - WiFi rates quantize to 802.11n MCS steps; PLC rates (bit-loading)
      are effectively continuous.

    Samplers are deterministic given the {!Rng.t} stream. *)

val wifi_capacity : Rng.t -> distance_m:float -> float
(** Capacity (Mbit/s) of a WiFi link at the given distance; 0 beyond
    the connection radius. Quantized to MCS-like steps. *)

val plc_capacity : Rng.t -> distance_m:float -> float
(** Capacity (Mbit/s) of a PLC link at the given distance (same
    electrical panel assumed); 0 beyond the connection radius. *)

val sample : Rng.t -> Technology.t -> distance_m:float -> float
(** Dispatch on the technology's medium. Two WiFi channels at the same
    distance draw from the same distribution but with independent
    noise unless correlated sampling is requested via
    {!correlated_wifi_pair}. *)

val correlated_wifi_pair : Rng.t -> distance_m:float -> float * float
(** Capacities of the *same* node pair on two orthogonal WiFi channels.
    The paper notes that fading and channel characteristics have
    similar impact in all channels, so link capacities in different
    channels are correlated; we draw a common large-scale term and
    small independent per-channel noise. The multi-channel WiFi
    evaluations (Section 5.1) additionally assume equal bandwidth,
    hence "the same link capacities": use {!equal_wifi_pair} for the
    paper's exact setting. *)

val equal_wifi_pair : Rng.t -> distance_m:float -> float * float
(** One WiFi draw replicated on both channels — the paper's
    multi-channel WiFi assumption (identical capacities on both
    channels). *)

val mcs_steps : float array
(** The 802.11n-like rate ladder (Mbit/s) used for WiFi quantization.
    Exposed for tests. *)
