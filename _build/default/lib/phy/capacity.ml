(* 802.11n 40 MHz single-stream MCS PHY rates scaled to ~effective UDP
   throughput, topping out at ~100 Mbps as measured on the testbed. *)
let mcs_steps =
  [| 0.0; 6.5; 13.0; 19.5; 26.0; 39.0; 52.0; 58.5; 65.0; 78.0; 91.0; 100.0 |]

let quantize_mcs rate =
  let best = ref 0.0 in
  Array.iter (fun s -> if s <= rate && s > !best then best := s) mcs_steps;
  (* Round to the highest step not exceeding the raw rate. *)
  if rate >= mcs_steps.(Array.length mcs_steps - 1) then
    mcs_steps.(Array.length mcs_steps - 1)
  else !best

let wifi_radius = 35.0
let plc_radius = 50.0
let peak = 100.0

(* Raw (pre-quantization) WiFi rate: steep distance decay with lognormal
   shadowing. Calibrated so that ~5 m links reach the peak and rates
   near the connection radius drop to a few Mbps. *)
let wifi_raw rng ~distance_m =
  if distance_m > wifi_radius then 0.0
  else begin
    let frac = distance_m /. wifi_radius in
    let mean_rate = peak *. (1.0 -. (frac ** 1.35)) in
    let shadow = exp (Rng.gaussian rng ~mean:0.0 ~std:0.30) in
    Float.max 0.0 (Float.min peak (mean_rate *. shadow))
  end

let wifi_capacity rng ~distance_m = quantize_mcs (wifi_raw rng ~distance_m)

(* PLC: wiring topology, not geometric distance, dominates. We model a
   weak distance trend plus a wide lognormal spread, so short links can
   be mediocre and long links can be strong — the diversity that lets
   PLC cover WiFi blind spots. *)
let plc_capacity rng ~distance_m =
  if distance_m > plc_radius then 0.0
  else begin
    let frac = distance_m /. plc_radius in
    let mean_rate = peak *. (0.85 -. (0.45 *. frac)) in
    let shadow = exp (Rng.gaussian rng ~mean:0.0 ~std:0.55) in
    let rate = mean_rate *. shadow in
    (* Bit loading is continuous; clamp to the usable range and drop
       hopeless links (deep notches) to zero. *)
    if rate < 2.0 then 0.0 else Float.min peak rate
  end

let sample rng (tech : Technology.t) ~distance_m =
  match tech.Technology.medium with
  | Technology.Wifi _ -> wifi_capacity rng ~distance_m
  | Technology.Plc -> plc_capacity rng ~distance_m

let correlated_wifi_pair rng ~distance_m =
  if distance_m > wifi_radius then (0.0, 0.0)
  else begin
    let frac = distance_m /. wifi_radius in
    let mean_rate = peak *. (1.0 -. (frac ** 1.35)) in
    (* Common large-scale shadowing, small independent per-channel term. *)
    let common = exp (Rng.gaussian rng ~mean:0.0 ~std:0.28) in
    let c1 = exp (Rng.gaussian rng ~mean:0.0 ~std:0.08) in
    let c2 = exp (Rng.gaussian rng ~mean:0.0 ~std:0.08) in
    let cap noise =
      quantize_mcs (Float.max 0.0 (Float.min peak (mean_rate *. common *. noise)))
    in
    (cap c1, cap c2)
  end

let equal_wifi_pair rng ~distance_m =
  let c = wifi_capacity rng ~distance_m in
  (c, c)
