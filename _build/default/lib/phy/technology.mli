(** Link-technology descriptors for the hybrid network.

    The paper's networks combine IEEE 802.11n WiFi (one or two
    non-interfering 40 MHz channels) and HomePlug AV (IEEE 1901) PLC.
    A technology here is one *medium*: links of the same technology
    contend for airtime (CSMA/CA in both standards), links of
    different technologies never interfere. Two WiFi channels are
    therefore two distinct technologies.

    Connection radii follow the paper's testbed measurements: 35 m
    for WiFi and 50 m for PLC (Section 5.1); PLC additionally requires
    both endpoints on the same electrical panel. *)

type medium =
  | Wifi of int  (** 802.11n on the given non-interfering channel (1 or 2) *)
  | Plc          (** HomePlug AV over the electrical wiring *)

type t = {
  index : int;          (** dense technology index used by the multigraph *)
  medium : medium;
  name : string;        (** short printable name, e.g. ["wifi1"], ["plc"] *)
  conn_radius_m : float; (** max distance for a usable link, meters *)
  max_capacity_mbps : float; (** peak link capacity on this medium *)
}

val wifi : index:int -> channel:int -> t
(** 802.11n technology descriptor (35 m radius, 100 Mbps peak). *)

val plc : index:int -> t
(** HomePlug AV descriptor (50 m radius, 100 Mbps peak). *)

val is_plc : t -> bool
(** [true] iff the medium is PLC. *)

val is_wifi : t -> bool
(** [true] iff the medium is a WiFi channel. *)

val hybrid : unit -> t list
(** The paper's hybrid PLC/WiFi set: WiFi channel 1 (index 0) and PLC
    (index 1). *)

val single_wifi : unit -> t list
(** Single-channel WiFi only (index 0). *)

val multi_wifi : unit -> t list
(** Two non-interfering WiFi channels (indexes 0 and 1) with equal
    bandwidth, as in the paper's MP-mWiFi comparisons. *)

val pp : Format.formatter -> t -> unit
(** Prints the short name. *)
