lib/phy/technology.mli: Format
