lib/phy/capacity.ml: Array Float Rng Technology
