lib/phy/estimator.ml: Array Capacity Float Rng
