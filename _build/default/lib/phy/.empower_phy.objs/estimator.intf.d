lib/phy/estimator.mli: Rng
