lib/phy/technology.ml: Format Printf
