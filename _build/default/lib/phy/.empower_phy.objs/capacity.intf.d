lib/phy/capacity.mli: Rng Technology
