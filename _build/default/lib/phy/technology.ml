type medium = Wifi of int | Plc

type t = {
  index : int;
  medium : medium;
  name : string;
  conn_radius_m : float;
  max_capacity_mbps : float;
}

let wifi ~index ~channel =
  {
    index;
    medium = Wifi channel;
    name = Printf.sprintf "wifi%d" channel;
    conn_radius_m = 35.0;
    max_capacity_mbps = 100.0;
  }

let plc ~index =
  {
    index;
    medium = Plc;
    name = "plc";
    conn_radius_m = 50.0;
    max_capacity_mbps = 100.0;
  }

let is_plc t = t.medium = Plc

let is_wifi t = match t.medium with Wifi _ -> true | Plc -> false

let hybrid () = [ wifi ~index:0 ~channel:1; plc ~index:1 ]

let single_wifi () = [ wifi ~index:0 ~channel:1 ]

let multi_wifi () = [ wifi ~index:0 ~channel:1; wifi ~index:1 ~channel:2 ]

let pp ppf t = Format.pp_print_string ppf t.name
