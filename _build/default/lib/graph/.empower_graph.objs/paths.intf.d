lib/graph/paths.mli: Format Multigraph
