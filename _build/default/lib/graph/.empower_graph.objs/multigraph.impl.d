lib/graph/multigraph.ml: Array Float Format List
