lib/graph/paths.ml: Format Hashtbl List Multigraph Stdlib
