lib/graph/yen.mli: Multigraph Paths
