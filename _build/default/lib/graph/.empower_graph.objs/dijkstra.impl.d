lib/graph/dijkstra.ml: Array Float List Multigraph Paths Pqueue
