lib/graph/dijkstra.mli: Multigraph Paths
