lib/graph/yen.ml: Array Dijkstra Float Hashtbl List Multigraph Paths Pqueue Set Stdlib
