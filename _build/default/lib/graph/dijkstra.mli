(** Shortest paths on the hybrid multigraph with channel-switching cost.

    This is the single-path procedure of Section 3.1. The link weight
    is [W(l) = d_l = 1/c_l] (the ETT-equivalent metric), and a
    channel-switching cost (CSC) is charged at every intermediate node
    [u]: [w_ns(u) = min over usable egress links of d_l] when the path
    keeps the same technology through [u], and [w_s(u) = 0] when it
    switches. This choice (derived in the paper from the optimal CSC
    under the isotonicity requirement) favours technology-alternating
    paths, mitigating intra-path interference.

    Dijkstra runs on the virtual graph of (node, incoming technology)
    states, which makes the CSC compatible with the algorithm exactly
    as in Yang et al. [44]. *)

type constraints = {
  banned_links : int -> bool;  (** candidate links to skip entirely *)
  banned_nodes : int -> bool;  (** nodes that may not be entered *)
}
(** Search restrictions used by Yen's algorithm; see {!no_constraints}. *)

val no_constraints : constraints
(** Bans nothing. *)

val shortest_path :
  ?csc:bool ->
  ?constraints:constraints ->
  ?init_tech:int ->
  Multigraph.t ->
  src:int ->
  dst:int ->
  (Paths.t * float) option
(** [shortest_path g ~src ~dst] is the minimum-weight usable path and
    its weight, or [None] if [dst] is unreachable over links of
    strictly positive capacity. [?csc] (default [true]) disables the
    channel-switching cost when [false] (the paper sets CSC = 0 for
    single-technology WiFi scenarios). [?init_tech] states that the
    (virtual) hop into [src] used the given technology — used by Yen
    spur computations so the CSC at the spur node is charged
    correctly. Requires [src <> dst]. *)

val path_cost : ?csc:bool -> ?init_tech:int -> Multigraph.t -> Paths.t -> float
(** Weight of an explicit path under the same metric (sum of [d_l]
    plus CSC at intermediate nodes); [infinity] if any hop is
    unusable. *)

val wns : Multigraph.t -> int -> float
(** [wns g u]: the non-switching cost at node [u], i.e. the minimum
    [d_l] over usable egress links of [u]; [infinity] when [u] has no
    usable egress link. Exposed for tests and ablations. *)
