type t = { links : int list }

let of_links g links =
  match links with
  | [] -> invalid_arg "Paths.of_links: empty path"
  | first :: rest ->
    let rec check prev = function
      | [] -> ()
      | l :: tl ->
        let lk = Multigraph.link g l in
        if lk.Multigraph.src <> prev then
          invalid_arg "Paths.of_links: non-contiguous hops";
        check lk.Multigraph.dst tl
    in
    check (Multigraph.link g first).Multigraph.dst rest;
    { links }

let src g t =
  match t.links with
  | [] -> invalid_arg "Paths.src: empty path"
  | l :: _ -> (Multigraph.link g l).Multigraph.src

let dst g t =
  match t.links with
  | [] -> invalid_arg "Paths.dst: empty path"
  | links -> (Multigraph.link g (List.nth links (List.length links - 1))).Multigraph.dst

let nodes g t =
  match t.links with
  | [] -> []
  | first :: _ ->
    (Multigraph.link g first).Multigraph.src
    :: List.map (fun l -> (Multigraph.link g l).Multigraph.dst) t.links

let hops t = List.length t.links

let is_loopless g t =
  let ns = nodes g t in
  let seen = Hashtbl.create 16 in
  List.for_all
    (fun n ->
      if Hashtbl.mem seen n then false
      else begin
        Hashtbl.add seen n ();
        true
      end)
    ns

let techs g t = List.map (fun l -> (Multigraph.link g l).Multigraph.tech) t.links

let equal a b = a.links = b.links

let compare a b = Stdlib.compare a.links b.links

let mem_link t l = List.mem l t.links

let pp g ppf t =
  match t.links with
  | [] -> Format.pp_print_string ppf "<empty>"
  | first :: _ ->
    Format.fprintf ppf "%d" (Multigraph.link g first).Multigraph.src;
    List.iter
      (fun l ->
        let lk = Multigraph.link g l in
        Format.fprintf ppf " -t%d-> %d" lk.Multigraph.tech lk.Multigraph.dst)
      t.links
