type link = {
  id : int;
  src : int;
  dst : int;
  tech : int;
  peer : int;
  edge : int;
}

type t = {
  n_nodes : int;
  n_techs : int;
  links : link array;
  caps : float array;
  out_of : int list array;
  in_of : int list array;
}

let n_nodes t = t.n_nodes
let n_techs t = t.n_techs
let num_links t = Array.length t.links

let create ~n_nodes ~n_techs ~edges =
  if n_nodes <= 0 then invalid_arg "Multigraph.create: n_nodes <= 0";
  if n_techs <= 0 then invalid_arg "Multigraph.create: n_techs <= 0";
  let n_edges = List.length edges in
  let links = Array.make (2 * n_edges) { id = 0; src = 0; dst = 0; tech = 0; peer = 0; edge = 0 } in
  let caps = Array.make (2 * n_edges) 0.0 in
  let out_of = Array.make n_nodes [] in
  let in_of = Array.make n_nodes [] in
  List.iteri
    (fun e (u, v, tech, cap) ->
      if u < 0 || u >= n_nodes || v < 0 || v >= n_nodes then
        invalid_arg "Multigraph.create: node id out of range";
      if u = v then invalid_arg "Multigraph.create: self-loop";
      if tech < 0 || tech >= n_techs then
        invalid_arg "Multigraph.create: technology index out of range";
      if not (Float.is_finite cap) || cap < 0.0 then
        invalid_arg "Multigraph.create: capacity must be finite and >= 0";
      let fwd = 2 * e and bwd = (2 * e) + 1 in
      links.(fwd) <- { id = fwd; src = u; dst = v; tech; peer = bwd; edge = e };
      links.(bwd) <- { id = bwd; src = v; dst = u; tech; peer = fwd; edge = e };
      caps.(fwd) <- cap;
      caps.(bwd) <- cap;
      out_of.(u) <- fwd :: out_of.(u);
      out_of.(v) <- bwd :: out_of.(v);
      in_of.(v) <- fwd :: in_of.(v);
      in_of.(u) <- bwd :: in_of.(u))
    edges;
  (* Keep adjacency lists in increasing link-id order for determinism. *)
  Array.iteri (fun i l -> out_of.(i) <- List.rev l) out_of;
  Array.iteri (fun i l -> in_of.(i) <- List.rev l) in_of;
  { n_nodes; n_techs; links; caps; out_of; in_of }

let check_id t l =
  if l < 0 || l >= Array.length t.links then
    invalid_arg "Multigraph: link id out of range"

let link t l =
  check_id t l;
  t.links.(l)

let links t = t.links

let capacity t l =
  check_id t l;
  t.caps.(l)

let capacities t = Array.copy t.caps

let d t l =
  let c = capacity t l in
  if c <= 0.0 then infinity else 1.0 /. c

let usable t l = capacity t l > 0.0

let out_links t u = t.out_of.(u)
let in_links t u = t.in_of.(u)

let out_links_tech t u k =
  List.filter (fun l -> t.links.(l).tech = k) t.out_of.(u)

let with_capacities t caps =
  if Array.length caps <> Array.length t.caps then
    invalid_arg "Multigraph.with_capacities: length mismatch";
  Array.iter
    (fun c ->
      if not (Float.is_finite c) || c < 0.0 then
        invalid_arg "Multigraph.with_capacities: capacity must be finite and >= 0")
    caps;
  { t with caps = Array.copy caps }

let scale_capacity t l f =
  check_id t l;
  if f < 0.0 then invalid_arg "Multigraph.scale_capacity: negative factor";
  let caps = Array.copy t.caps in
  caps.(l) <- caps.(l) *. f;
  { t with caps }

let find_links t ~src ~dst =
  List.filter (fun l -> t.links.(l).dst = dst) t.out_of.(src)

let pp_link t ppf l =
  let lk = link t l in
  Format.fprintf ppf "%d->%d tech%d#%d %.1fMbps" lk.src lk.dst lk.tech lk.id
    t.caps.(l)
