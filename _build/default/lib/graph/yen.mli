(** Yen's algorithm: the n shortest loopless paths under the CSC metric.

    This implements the [n-shortest(G)] step of Section 3.2. The
    multipath exploration tree expands each multigraph vertex with the
    [n] shortest single-path-procedure routes; considering several
    candidates both enables route diversity and compensates for the
    single-path procedure not always returning the highest-throughput
    route. The paper uses [n = 5].

    Spur-path computations charge the channel-switching cost at the
    spur node according to the technology of the last root-path hop,
    so candidate costs equal {!Dijkstra.path_cost} of the full path. *)

val k_shortest :
  ?csc:bool -> Multigraph.t -> src:int -> dst:int -> k:int -> (Paths.t * float) list
(** [k_shortest g ~src ~dst ~k] returns up to [k] distinct loopless
    paths in non-decreasing weight order (fewer if the network does
    not contain [k] usable paths; empty if [dst] is unreachable).
    Requires [k >= 1] and [src <> dst]. *)
