(** Routes: loop-free sequences of directed links.

    A route (equivalently, a path; Section 2) from [s] to [d] is the
    ordered list of directed link ids joining them. Link ids refer to a
    {!Multigraph.t}; a path value is only meaningful together with the
    multigraph (or any capacity-updated view of it, since views share
    the link structure). *)

type t = { links : int list }
(** Ordered hops; the head is the first link out of the source. *)

val of_links : Multigraph.t -> int list -> t
(** Validate contiguity ([dst] of each hop = [src] of the next) and
    non-emptiness. Raises [Invalid_argument] otherwise. *)

val src : Multigraph.t -> t -> int
(** Source node (transmitter of the first hop). *)

val dst : Multigraph.t -> t -> int
(** Destination node (receiver of the last hop). *)

val nodes : Multigraph.t -> t -> int list
(** Visited nodes in order, source first, destination last. *)

val hops : t -> int
(** Number of links. *)

val is_loopless : Multigraph.t -> t -> bool
(** [true] iff no node is visited twice. *)

val techs : Multigraph.t -> t -> int list
(** Technology of each hop, in order. *)

val equal : t -> t -> bool
(** Structural equality on the hop list. *)

val compare : t -> t -> int
(** Total order on the hop list (for use in sets/maps). *)

val mem_link : t -> int -> bool
(** [true] iff the path uses the given link id. *)

val pp : Multigraph.t -> Format.formatter -> t -> unit
(** Print as ["0 -w-> 3 -p-> 5"]-style hop chain (first letter of a
    technology index as [t<k>]). *)
