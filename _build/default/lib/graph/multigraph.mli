(** The hybrid-network multigraph G(V, {E_1, ..., E_K}) of Section 2.

    Nodes are integers [0 .. n_nodes-1]. Each physical (bidirectional)
    edge of technology [k] is materialized as two directed links that
    share the same medium; link capacities are in Mbit/s. A link is
    usable when its capacity is strictly positive; the paper's
    [d_l = 1/c_l] metric is exposed as {!d} and is [infinity] for
    unusable links, so routing naturally avoids them.

    Values of type {!t} are immutable: the routing [update] procedure
    (Section 3.2) derives new views with {!with_capacities}. *)

type link = {
  id : int;          (** dense link identifier, [0 .. num_links-1] *)
  src : int;         (** transmitting node *)
  dst : int;         (** receiving node *)
  tech : int;        (** technology index, [0 .. n_techs-1] *)
  peer : int;        (** id of the reverse-direction link *)
  edge : int;        (** physical-edge identifier shared with [peer] *)
}

type t
(** Immutable multigraph with current link capacities. *)

val create :
  n_nodes:int -> n_techs:int -> edges:(int * int * int * float) list -> t
(** [create ~n_nodes ~n_techs ~edges] builds a multigraph from
    physical edges [(u, v, tech, capacity_mbps)]. Each edge yields two
    directed links ([u->v] first). Raises [Invalid_argument] on bad
    node ids, bad technology indexes, non-finite or negative
    capacities, or self-loops. *)

val n_nodes : t -> int
(** Number of nodes. *)

val n_techs : t -> int
(** Number of technologies [K]. *)

val num_links : t -> int
(** Number of directed links (twice the number of physical edges). *)

val link : t -> int -> link
(** Link record by id. Raises [Invalid_argument] on bad ids. *)

val links : t -> link array
(** All links, indexed by id. Do not mutate. *)

val capacity : t -> int -> float
(** Current capacity (Mbit/s) of a link, by id. *)

val capacities : t -> float array
(** Copy of the full capacity vector, indexed by link id. *)

val d : t -> int -> float
(** [d g l] is [1 /. capacity g l], the paper's airtime-per-bit metric;
    [infinity] when the capacity is zero. *)

val usable : t -> int -> bool
(** [true] iff the link currently has strictly positive capacity. *)

val out_links : t -> int -> int list
(** Ids of links leaving a node (any technology). *)

val in_links : t -> int -> int list
(** Ids of links entering a node. *)

val out_links_tech : t -> int -> int -> int list
(** [out_links_tech g u k]: ids of links leaving [u] with technology [k]. *)

val with_capacities : t -> float array -> t
(** A view of the same structure with a different capacity vector
    (the array is copied). Raises [Invalid_argument] on length
    mismatch or negative entries. *)

val scale_capacity : t -> int -> float -> t
(** [scale_capacity g l f] multiplies link [l]'s capacity by [f >= 0],
    returning a new view. *)

val find_links : t -> src:int -> dst:int -> int list
(** All directed links from [src] to [dst] (one per technology edge). *)

val pp_link : t -> Format.formatter -> int -> unit
(** Human-readable ["3->7 plc#2 45.0Mbps"]-style printer. *)
