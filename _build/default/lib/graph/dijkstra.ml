type constraints = {
  banned_links : int -> bool;
  banned_nodes : int -> bool;
}

let no_constraints = { banned_links = (fun _ -> false); banned_nodes = (fun _ -> false) }

let wns g u =
  List.fold_left
    (fun acc l -> if Multigraph.usable g l then min acc (Multigraph.d g l) else acc)
    infinity (Multigraph.out_links g u)

(* The switching cost charged at node [u] when a path arrives with
   technology [in_tech] and leaves with technology [out_tech]. *)
let csc_cost g ~enabled ~in_tech ~out_tech u =
  if not enabled then 0.0
  else
    match in_tech with
    | None -> 0.0
    | Some k -> if k = out_tech then wns g u else 0.0

(* States of the virtual interface graph: (node, incoming technology),
   where "no incoming technology" (the flow source) is encoded as -1. *)
let state_id ~k node in_tech = (node * (k + 1)) + in_tech + 1

let shortest_path ?(csc = true) ?(constraints = no_constraints) ?init_tech g ~src
    ~dst =
  if src = dst then invalid_arg "Dijkstra.shortest_path: src = dst";
  let k = Multigraph.n_techs g in
  let n_states = Multigraph.n_nodes g * (k + 1) in
  let dist = Array.make n_states infinity in
  let via = Array.make n_states (-1) in
  let prev = Array.make n_states (-1) in
  (* via.(s) is the link taken to reach state s and prev.(s) the state
     it was reached from; -1 at the source. *)
  let queue = Pqueue.create () in
  let init_in = match init_tech with None -> -1 | Some t -> t in
  let s0 = state_id ~k src init_in in
  dist.(s0) <- 0.0;
  Pqueue.push queue 0.0 (src, init_in);
  let best_dst = ref None in
  let rec run () =
    match Pqueue.pop queue with
    | None -> ()
    | Some (cost, (u, in_tech)) ->
      let su = state_id ~k u in_tech in
      if cost > dist.(su) then run ()
      else if u = dst then best_dst := Some (u, in_tech)
      else begin
        let relax l =
          let lk = Multigraph.link g l in
          if
            Multigraph.usable g l
            && (not (constraints.banned_links l))
            && not (constraints.banned_nodes lk.Multigraph.dst)
          then begin
            let in_t = if in_tech < 0 then None else Some in_tech in
            let step =
              Multigraph.d g l
              +. csc_cost g ~enabled:csc ~in_tech:in_t ~out_tech:lk.Multigraph.tech u
            in
            if Float.is_finite step then begin
              let nd = cost +. step in
              let sv = state_id ~k lk.Multigraph.dst lk.Multigraph.tech in
              if nd < dist.(sv) then begin
                dist.(sv) <- nd;
                via.(sv) <- l;
                prev.(sv) <- su;
                Pqueue.push queue nd (lk.Multigraph.dst, lk.Multigraph.tech)
              end
            end
          end
        in
        List.iter relax (Multigraph.out_links g u);
        run ()
      end
  in
  run ();
  match !best_dst with
  | None -> None
  | Some (u, in_tech) ->
    (* Walk the recorded predecessor states back to the source. *)
    let rec back s acc =
      let l = via.(s) in
      if l < 0 then acc else back prev.(s) (l :: acc)
    in
    let s_final = state_id ~k u in_tech in
    let links = back s_final [] in
    let path = Paths.of_links g links in
    Some (path, dist.(s_final))

let path_cost ?(csc = true) ?init_tech g path =
  let rec go in_tech links acc =
    match links with
    | [] -> acc
    | l :: rest ->
      if not (Multigraph.usable g l) then infinity
      else begin
        let lk = Multigraph.link g l in
        let sw =
          csc_cost g ~enabled:csc ~in_tech ~out_tech:lk.Multigraph.tech
            lk.Multigraph.src
        in
        go (Some lk.Multigraph.tech) rest (acc +. Multigraph.d g l +. sw)
      end
  in
  go init_tech path.Paths.links 0.0
