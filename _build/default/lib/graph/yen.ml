module Path_set = Set.Make (struct
  type t = int list

  let compare = Stdlib.compare
end)

let k_shortest ?(csc = true) g ~src ~dst ~k =
  if k < 1 then invalid_arg "Yen.k_shortest: k < 1";
  match Dijkstra.shortest_path ~csc g ~src ~dst with
  | None -> []
  | Some first ->
    let accepted = ref [ first ] in
    let seen = ref (Path_set.singleton (fst first).Paths.links) in
    (* Candidate paths found so far but not yet accepted. *)
    let candidates = Pqueue.create () in
    let add_candidate (p, c) =
      if (not (Path_set.mem p.Paths.links !seen)) && Paths.is_loopless g p then begin
        seen := Path_set.add p.Paths.links !seen;
        Pqueue.push candidates c p
      end
    in
    let expand (prev_path, _) =
      let links = Array.of_list prev_path.Paths.links in
      let nodes = Array.of_list (Paths.nodes g prev_path) in
      for i = 0 to Array.length links - 1 do
        let spur_node = nodes.(i) in
        let root_links = Array.to_list (Array.sub links 0 i) in
        (* Links banned at the spur: the i-th hop of every accepted or
           candidate path sharing this root prefix. *)
        let banned_links_tbl = Hashtbl.create 8 in
        let consider p =
          let pl = p.Paths.links in
          let rec prefix_match a b =
            match (a, b) with
            | [], _ -> true
            | x :: xs, y :: ys when x = y -> prefix_match xs ys
            | _ -> false
          in
          if prefix_match root_links pl then
            match List.nth_opt pl i with
            | Some l -> Hashtbl.replace banned_links_tbl l ()
            | None -> ()
        in
        List.iter (fun (p, _) -> consider p) !accepted;
        (* Nodes of the root path (except the spur node) are banned to
           keep candidates loopless. *)
        let banned_nodes_tbl = Hashtbl.create 8 in
        for j = 0 to i - 1 do
          Hashtbl.replace banned_nodes_tbl nodes.(j) ()
        done;
        let constraints =
          {
            Dijkstra.banned_links = Hashtbl.mem banned_links_tbl;
            banned_nodes = Hashtbl.mem banned_nodes_tbl;
          }
        in
        let init_tech =
          if i = 0 then None
          else Some (Multigraph.link g links.(i - 1)).Multigraph.tech
        in
        let spur =
          match init_tech with
          | None -> Dijkstra.shortest_path ~csc ~constraints g ~src:spur_node ~dst
          | Some t ->
            Dijkstra.shortest_path ~csc ~constraints ~init_tech:t g ~src:spur_node
              ~dst
        in
        match spur with
        | None -> ()
        | Some (spur_path, _) ->
          let total_links = root_links @ spur_path.Paths.links in
          let p = Paths.of_links g total_links in
          let cost = Dijkstra.path_cost ~csc g p in
          if Float.is_finite cost then add_candidate (p, cost)
      done
    in
    let rec loop () =
      if List.length !accepted >= k then ()
      else begin
        expand (List.hd !accepted);
        match Pqueue.pop candidates with
        | None -> ()
        | Some (cost, p) ->
          accepted := (p, cost) :: !accepted;
          loop ()
      end
    in
    loop ();
    List.sort (fun (_, a) (_, b) -> compare a b) (List.rev !accepted)
