(** A Reno-style TCP sender state machine (for Section 6.4).

    The TCP-friendliness study only needs the dynamics that interact
    with EMPoWER: window growth (slow start / congestion avoidance),
    loss detection by triple duplicate ACK (fast retransmit / fast
    recovery) and by retransmission timeout, and RTT estimation
    (Jacobson/Karn). Segments are fixed-size and identified by index;
    the receiver side is the engine's reorder buffer, which produces
    cumulative ACKs.

    The module is pure state: the simulator asks {!take_segment} when
    it can transmit, feeds {!on_ack} / {!on_rto}, and polls
    {!rto_deadline} to schedule timer events. *)

type params = {
  segment_bytes : int;    (** segment size (one aggregate frame) *)
  init_cwnd : float;      (** initial window, segments *)
  init_ssthresh : float;  (** initial slow-start threshold, segments *)
  min_rto : float;        (** RTO floor, seconds *)
  max_cwnd : float;       (** window cap, segments *)
}

val default_params : params
(** 12000-byte segments, cwnd 2, ssthresh 64, 200 ms RTO floor,
    cwnd cap 1000. *)

type t

val create : ?params:params -> total_bytes:int option -> unit -> t
(** A sender with the given amount of data ([None] = unbounded). *)

val params : t -> params

val segments_total : t -> int option
(** Total segments to deliver, if bounded. *)

val take_segment : ?new_data_limit:int -> t -> now:float -> int option
(** The next segment index to transmit, if the window allows:
    retransmissions first, then new data. Marks the segment as
    in-flight and records its send time. [None] when window-limited
    or out of data. [new_data_limit] caps the index of *new* segments
    (exclusive) — the application-layer gate for data that has not
    been produced yet (e.g. Poisson file arrivals); retransmissions
    are never blocked. *)

val on_ack : t -> now:float -> cum_ack:int -> unit
(** Process a cumulative ACK ([cum_ack] = number of in-order segments
    the receiver has; i.e. segments [0 .. cum_ack-1] are delivered).
    Handles new-data ACKs (window growth, RTT sample), duplicate ACKs
    and fast retransmit/recovery. *)

val on_rto : t -> now:float -> unit
(** Retransmission timeout: collapse cwnd to 1, halve ssthresh,
    queue the oldest unacked segment, back the timer off. *)

val rto_deadline : t -> float option
(** Absolute time at which the pending timer fires; [None] when
    nothing is in flight. *)

val finished : t -> bool
(** All segments delivered (never true for unbounded senders). *)

val cwnd : t -> float
(** Current congestion window, segments. *)

val ssthresh : t -> float

val srtt : t -> float
(** Smoothed RTT estimate (0 before the first sample). *)

val snd_una : t -> int
(** Lowest unacknowledged segment index. *)

val in_flight : t -> int
(** Segments sent and not yet cumulatively acknowledged. *)

val retransmissions : t -> int
(** Total retransmitted segments (diagnostic). *)
