let width = 50.0
let height = 30.0
let n_dual = 5
let n_single = 5

let generate rng =
  let make_node id dual =
    {
      Builder.id;
      pos = Geometry.uniform_in_rect rng ~width ~height;
      dual;
      panel = 0;
    }
  in
  let nodes =
    Array.init (n_dual + n_single) (fun i -> make_node i (i < n_dual))
  in
  Builder.make rng ~nodes
