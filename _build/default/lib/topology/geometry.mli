(** Plane geometry for node placement. *)

type point = { x : float; y : float }
(** Position in meters. *)

val distance : point -> point -> float
(** Euclidean distance. *)

val uniform_in_rect : Rng.t -> width:float -> height:float -> point
(** Uniform draw in the [0,width] x [0,height] rectangle. *)

val grid_cells : width:float -> height:float -> cell:float -> point list
(** Centers of a [cell] x [cell] grid covering the rectangle, row-major. *)
