type point = { x : float; y : float }

let distance a b =
  let dx = a.x -. b.x and dy = a.y -. b.y in
  sqrt ((dx *. dx) +. (dy *. dy))

let uniform_in_rect rng ~width ~height =
  { x = Rng.uniform rng 0.0 width; y = Rng.uniform rng 0.0 height }

let grid_cells ~width ~height ~cell =
  let nx = int_of_float (width /. cell) in
  let ny = int_of_float (height /. cell) in
  List.concat
    (List.init ny (fun j ->
         List.init nx (fun i ->
             {
               x = (float_of_int i +. 0.5) *. cell;
               y = (float_of_int j +. 0.5) *. cell;
             })))
