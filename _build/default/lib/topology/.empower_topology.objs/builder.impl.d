lib/topology/builder.ml: Array Capacity Geometry List Multigraph Technology
