lib/topology/testbed.mli: Builder Geometry Rng
