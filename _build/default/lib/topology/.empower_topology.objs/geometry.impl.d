lib/topology/geometry.ml: List Rng
