lib/topology/enterprise.ml: Array Builder Geometry List Rng
