lib/topology/enterprise.mli: Builder Geometry Rng
