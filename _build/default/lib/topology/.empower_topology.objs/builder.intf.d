lib/topology/builder.mli: Geometry Multigraph Rng Technology
