lib/topology/testbed.ml: Array Builder Float Geometry Rng
