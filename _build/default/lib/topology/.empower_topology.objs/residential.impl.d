lib/topology/residential.ml: Array Builder Geometry
