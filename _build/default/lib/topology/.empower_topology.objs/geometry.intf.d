lib/topology/geometry.mli: Rng
