lib/topology/residential.mli: Builder Rng
