let width = 65.0
let height = 40.0
let n_nodes = 22

(* Fixed floorplan mimicking Figure 8: a left cluster (paper nodes
   1-6), a center band (7-14) and a right cluster (15-22), spread over
   the 65 x 40 m floor so that no single WiFi hop (35 m radius) covers
   the diagonal. Index i holds paper node i+1. *)
let positions =
  [|
    { Geometry.x = 4.0; y = 34.0 };   (* 1 *)
    { Geometry.x = 9.0; y = 37.0 };   (* 2 *)
    { Geometry.x = 7.0; y = 28.0 };   (* 3 *)
    { Geometry.x = 3.0; y = 21.0 };   (* 4 *)
    { Geometry.x = 12.0; y = 23.0 };  (* 5 *)
    { Geometry.x = 9.0; y = 13.0 };   (* 6 *)
    { Geometry.x = 21.0; y = 28.0 };  (* 7 *)
    { Geometry.x = 24.0; y = 19.0 };  (* 8 *)
    { Geometry.x = 20.0; y = 8.0 };   (* 9 *)
    { Geometry.x = 28.0; y = 12.0 };  (* 10 *)
    { Geometry.x = 17.0; y = 36.0 };  (* 11 *)
    { Geometry.x = 30.0; y = 33.0 };  (* 12 *)
    { Geometry.x = 35.0; y = 25.0 };  (* 13 *)
    { Geometry.x = 38.0; y = 14.0 };  (* 14 *)
    { Geometry.x = 44.0; y = 31.0 };  (* 15 *)
    { Geometry.x = 42.0; y = 6.0 };   (* 16 *)
    { Geometry.x = 49.0; y = 20.0 };  (* 17 *)
    { Geometry.x = 47.0; y = 38.0 };  (* 18 *)
    { Geometry.x = 55.0; y = 34.0 };  (* 19 *)
    { Geometry.x = 54.0; y = 11.0 };  (* 20 *)
    { Geometry.x = 60.0; y = 25.0 };  (* 21 *)
    { Geometry.x = 62.0; y = 7.0 };   (* 22 *)
  |]

(* Interior walls: the real office floor blocks many WiFi links that
   pure distance would allow (the paper's flows like 1->13 or 9->13
   are multi-hop at 20-40 m). We attenuate each pair's WiFi by a
   deterministic-per-draw wall count ~ one wall per ~9 m, halving the
   rate per wall; PLC rides the mains and does not care, which is
   exactly the medium-diversity the paper exploits. *)
let wall_attenuation rng dist =
  let expected_walls = dist /. 9.0 in
  let walls = ref 0 in
  let remaining = ref expected_walls in
  while !remaining > 0.0 do
    if Rng.float rng < Float.min 1.0 !remaining then incr walls;
    remaining := !remaining -. 1.0
  done;
  0.5 ** float_of_int !walls

let generate rng =
  let nodes =
    Array.init n_nodes (fun i ->
        { Builder.id = i; pos = positions.(i); dual = true; panel = 0 })
  in
  let inst = Builder.make rng ~nodes in
  for i = 0 to n_nodes - 1 do
    for j = i + 1 to n_nodes - 1 do
      let dist = Geometry.distance positions.(i) positions.(j) in
      let att = wall_attenuation rng dist in
      let apply m =
        let v = m.(i).(j) *. att in
        let v = if v < 5.0 then 0.0 else v in
        m.(i).(j) <- v;
        m.(j).(i) <- v
      in
      apply inst.Builder.wifi1;
      apply inst.Builder.wifi2
    done
  done;
  inst

let node k =
  if k < 1 || k > n_nodes then invalid_arg "Testbed.node: expected 1..22";
  k - 1
