type node = {
  id : int;
  pos : Geometry.point;
  dual : bool;
  panel : int;
}

type instance = {
  nodes : node array;
  wifi1 : float array array;
  wifi2 : float array array;
  plc : float array array;
}

type scenario = Hybrid | Single_wifi | Multi_wifi

let make rng ~nodes =
  let n = Array.length nodes in
  let wifi1 = Array.make_matrix n n 0.0 in
  let wifi2 = Array.make_matrix n n 0.0 in
  let plc = Array.make_matrix n n 0.0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let a = nodes.(i) and b = nodes.(j) in
      let dist = Geometry.distance a.pos b.pos in
      (* The paper's multi-channel WiFi assumption: both orthogonal
         channels see the same capacity, so one draw serves both. *)
      let w1, w2 = Capacity.equal_wifi_pair rng ~distance_m:dist in
      wifi1.(i).(j) <- w1;
      wifi1.(j).(i) <- w1;
      if a.dual && b.dual then begin
        wifi2.(i).(j) <- w2;
        wifi2.(j).(i) <- w2;
        if a.panel = b.panel then begin
          let p = Capacity.plc_capacity rng ~distance_m:dist in
          plc.(i).(j) <- p;
          plc.(j).(i) <- p
        end
      end
    done
  done;
  { nodes; wifi1; wifi2; plc }

let techs = function
  | Hybrid -> [| Technology.wifi ~index:0 ~channel:1; Technology.plc ~index:1 |]
  | Single_wifi -> [| Technology.wifi ~index:0 ~channel:1 |]
  | Multi_wifi ->
    [| Technology.wifi ~index:0 ~channel:1; Technology.wifi ~index:1 ~channel:2 |]

let graph inst scenario =
  let n = Array.length inst.nodes in
  let edges = ref [] in
  let add_matrix m tech_index =
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        if m.(i).(j) > 0.0 then edges := (i, j, tech_index, m.(i).(j)) :: !edges
      done
    done
  in
  add_matrix inst.wifi1 0;
  (match scenario with
  | Single_wifi -> ()
  | Hybrid -> add_matrix inst.plc 1
  | Multi_wifi -> add_matrix inst.wifi2 1);
  let n_techs = match scenario with Single_wifi -> 1 | Hybrid | Multi_wifi -> 2 in
  Multigraph.create ~n_nodes:n ~n_techs ~edges:(List.rev !edges)

let dual_nodes inst =
  Array.to_list inst.nodes
  |> List.filter (fun nd -> nd.dual)
  |> List.map (fun nd -> nd.id)

let node_count inst = Array.length inst.nodes
