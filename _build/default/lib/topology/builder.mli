(** Scenario instances: one random draw, three comparable networks.

    The paper compares hybrid PLC/WiFi, single-channel WiFi and
    two-channel WiFi *on the same topology* (same node positions, same
    WiFi channel-1 capacities). An {!instance} captures one random
    draw — node positions, panel assignment and per-pair capacities
    for WiFi channel 1, WiFi channel 2 (equal to channel 1, the
    paper's multi-channel assumption) and PLC — and {!graph} projects
    it onto a {!scenario}, producing the multigraph the routing and
    congestion-control algorithms run on.

    Dual nodes model PLC/WiFi gateways/extenders: in the hybrid
    scenario they own the PLC interface, in the multi-channel WiFi
    scenario they own the second WiFi radio. Single nodes (phones,
    laptops) always have only WiFi channel 1. *)

type node = {
  id : int;
  pos : Geometry.point;
  dual : bool;  (** has the second interface (PLC or WiFi channel 2) *)
  panel : int;  (** electrical panel feeding this node's outlets *)
}

type instance = {
  nodes : node array;
  wifi1 : float array array;  (** symmetric channel-1 capacity matrix, Mbps *)
  wifi2 : float array array;  (** channel-2 capacities (= wifi1 by default) *)
  plc : float array array;    (** PLC capacities; 0 across panels *)
}

type scenario =
  | Hybrid       (** WiFi channel 1 + PLC on dual nodes (EMPoWER's setting) *)
  | Single_wifi  (** WiFi channel 1 only *)
  | Multi_wifi   (** WiFi channels 1 and 2 (channel 2 on dual nodes) *)

val make :
  Rng.t -> nodes:node array -> instance
(** Sample all capacity matrices for the given node layout: channel-1
    WiFi for every pair in radius; channel 2 equal to channel 1
    between dual nodes; PLC between same-panel dual nodes in radius. *)

val techs : scenario -> Technology.t array
(** The technology table of a scenario ([index] fields are dense). *)

val graph : instance -> scenario -> Multigraph.t
(** Project the instance onto a scenario. Technology indexes follow
    {!techs}: index 0 is always WiFi channel 1; index 1 is PLC
    ([Hybrid]) or WiFi channel 2 ([Multi_wifi]). *)

val dual_nodes : instance -> int list
(** Ids of dual (gateway/extender-class) nodes. *)

val node_count : instance -> int
(** Number of nodes. *)
