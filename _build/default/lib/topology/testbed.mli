(** A synthetic stand-in for the paper's 22-node office testbed.

    The real testbed (Section 6.1, Figure 8) is one floor of a
    65 x 40 m office building: 22 APU1D nodes, each with two WiFi
    interfaces (Atheros AR9280) and a HomePlug AV PLC interface
    (QCA7420). We reproduce the floorplan as 22 fixed node positions
    with the same extent and roughly the same left/center/right
    clustering as Figure 8; capacities are sampled from the fitted
    per-medium distributions of {!Capacity}. All nodes are dual
    (every testbed box has all interfaces) and share one electrical
    distribution network, as the authors measured usable PLC links
    across the whole floor.

    Node ids here are 0-based: paper "Node k" is id [k-1]. *)

val width : float
(** 65 m. *)

val height : float
(** 40 m. *)

val n_nodes : int
(** 22. *)

val positions : Geometry.point array
(** The fixed floorplan, indexed by 0-based node id. *)

val generate : Rng.t -> Builder.instance
(** Sample link capacities for the fixed floorplan. Different seeds
    model different measurement campaigns (capacities vary over time);
    positions never change. *)

val node : int -> int
(** [node k] converts a 1-based paper node number to the 0-based id.
    Raises [Invalid_argument] outside [1..22]. *)
