(** The paper's enterprise topology (Section 5.1).

    A 100 x 60 m rectangle (company, hospital) with 20 nodes: 10 dual
    PLC/WiFi access points placed on distinct cells of a 10 x 10 m
    grid (matching the managed-WiFi density the authors observed in
    their building) and 10 single-channel WiFi clients dropped
    uniformly at random. The building has two electrical panels, each
    feeding one half of the floor ([x < 50] vs [x >= 50]); PLC links
    exist only within a panel. *)

val width : float
(** 100 m. *)

val height : float
(** 60 m. *)

val n_ap : int
(** 10 dual PLC/WiFi access points. *)

val n_client : int
(** 10 WiFi-only clients. *)

val panel_of : Geometry.point -> int
(** Panel feeding a position: 0 for the left half, 1 for the right. *)

val generate : Rng.t -> Builder.instance
(** One random enterprise draw. *)
