(** The paper's residential topology (Section 5.1).

    A 50 x 30 m rectangle with 10 nodes dropped uniformly at random:
    5 dual PLC/WiFi nodes (gateways, extenders, desktops, TVs) and 5
    single-channel WiFi nodes (phones, laptops). One electrical panel
    feeds the whole home. *)

val width : float
(** 50 m. *)

val height : float
(** 30 m. *)

val n_dual : int
(** 5 dual PLC/WiFi nodes. *)

val n_single : int
(** 5 WiFi-only nodes. *)

val generate : Rng.t -> Builder.instance
(** One random residential draw (positions + capacities). *)
