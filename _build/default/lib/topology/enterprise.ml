let width = 100.0
let height = 60.0
let n_ap = 10
let n_client = 10

let panel_of (p : Geometry.point) = if p.Geometry.x < width /. 2.0 then 0 else 1

let generate rng =
  let cells = Array.of_list (Geometry.grid_cells ~width ~height ~cell:10.0) in
  let ap_cells = Rng.sample_without_replacement rng n_ap (Array.length cells) in
  let ap_positions = List.map (fun i -> cells.(i)) ap_cells in
  let nodes = Array.make (n_ap + n_client) { Builder.id = 0; pos = { Geometry.x = 0.0; y = 0.0 }; dual = false; panel = 0 } in
  List.iteri
    (fun i pos -> nodes.(i) <- { Builder.id = i; pos; dual = true; panel = panel_of pos })
    ap_positions;
  for i = n_ap to n_ap + n_client - 1 do
    let pos = Geometry.uniform_in_rect rng ~width ~height in
    nodes.(i) <- { Builder.id = i; pos; dual = false; panel = panel_of pos }
  done;
  Builder.make rng ~nodes
