type op = Le | Eq | Ge

type outcome =
  | Optimal of float array * float
  | Infeasible
  | Unbounded

let eps = 1e-9

(* Tableau layout: [m] constraint rows over [n_cols] structural +
   slack/artificial columns, plus the right-hand side in column
   [n_cols]. [basis.(i)] is the column basic in row i. *)
type tableau = {
  a : float array array;  (* m x (n_cols + 1) *)
  basis : int array;
  m : int;
  n_cols : int;
}

let pivot t ~row ~col =
  let piv = t.a.(row).(col) in
  let arow = t.a.(row) in
  for j = 0 to t.n_cols do
    arow.(j) <- arow.(j) /. piv
  done;
  for i = 0 to t.m - 1 do
    if i <> row then begin
      let f = t.a.(i).(col) in
      if Float.abs f > 0.0 then begin
        let ai = t.a.(i) in
        for j = 0 to t.n_cols do
          ai.(j) <- ai.(j) -. (f *. arow.(j))
        done
      end
    end
  done;
  t.basis.(row) <- col

(* Reduced cost of column j under objective [obj] (a row vector over
   all columns): obj_j - sum_i obj_basis(i) * a_ij. *)
let reduced_costs t obj =
  let z = Array.make t.n_cols 0.0 in
  for j = 0 to t.n_cols - 1 do
    let acc = ref 0.0 in
    for i = 0 to t.m - 1 do
      let ob = obj.(t.basis.(i)) in
      if ob <> 0.0 then acc := !acc +. (ob *. t.a.(i).(j))
    done;
    z.(j) <- obj.(j) -. !acc
  done;
  z

let objective_value t obj =
  let acc = ref 0.0 in
  for i = 0 to t.m - 1 do
    let ob = obj.(t.basis.(i)) in
    if ob <> 0.0 then acc := !acc +. (ob *. t.a.(i).(t.n_cols))
  done;
  !acc

(* One simplex phase: maximize obj over the tableau. [allowed j] masks
   columns that may enter (used to keep artificials out in phase 2).
   Dantzig's rule with a switch to Bland's rule after an iteration
   budget guards against cycling. Returns [`Optimal] or [`Unbounded]. *)
let run_phase t obj ~allowed =
  let max_dantzig = 20 * (t.m + t.n_cols) in
  let iter = ref 0 in
  let rec step () =
    incr iter;
    let z = reduced_costs t obj in
    let entering =
      if !iter <= max_dantzig then begin
        (* Dantzig: most positive reduced cost. *)
        let best = ref (-1) and bestv = ref eps in
        for j = 0 to t.n_cols - 1 do
          if allowed j && z.(j) > !bestv then begin
            bestv := z.(j);
            best := j
          end
        done;
        !best
      end
      else begin
        (* Bland: smallest index with positive reduced cost. *)
        let rec find j =
          if j >= t.n_cols then -1
          else if allowed j && z.(j) > eps then j
          else find (j + 1)
        in
        find 0
      end
    in
    if entering < 0 then `Optimal
    else begin
      (* Ratio test; Bland tie-break on the leaving basic variable. *)
      let row = ref (-1) and best_ratio = ref infinity in
      for i = 0 to t.m - 1 do
        let aij = t.a.(i).(entering) in
        if aij > eps then begin
          let ratio = t.a.(i).(t.n_cols) /. aij in
          if
            ratio < !best_ratio -. eps
            || (Float.abs (ratio -. !best_ratio) <= eps
               && !row >= 0
               && t.basis.(i) < t.basis.(!row))
          then begin
            best_ratio := ratio;
            row := i
          end
        end
      done;
      if !row < 0 then `Unbounded
      else begin
        pivot t ~row:!row ~col:entering;
        step ()
      end
    end
  in
  step ()

let solve_max ~c ~rows =
  let n = Array.length c in
  List.iter
    (fun (a, _, _) ->
      if Array.length a <> n then
        invalid_arg "Simplex: row length differs from objective length")
    rows;
  (* Normalize to b >= 0. *)
  let rows =
    List.map
      (fun (a, op, b) ->
        if b < 0.0 then
          ( Array.map (fun v -> -.v) a,
            (match op with Le -> Ge | Ge -> Le | Eq -> Eq),
            -.b )
        else (a, op, b))
      rows
  in
  let m = List.length rows in
  let n_slack =
    List.fold_left
      (fun acc (_, op, _) -> match op with Le | Ge -> acc + 1 | Eq -> acc)
      0 rows
  in
  (* Artificials: for Ge and Eq rows. *)
  let n_art =
    List.fold_left
      (fun acc (_, op, _) -> match op with Ge | Eq -> acc + 1 | Le -> acc)
      0 rows
  in
  let n_cols = n + n_slack + n_art in
  let a = Array.make_matrix m (n_cols + 1) 0.0 in
  let basis = Array.make m 0 in
  let slack_idx = ref n and art_idx = ref (n + n_slack) in
  List.iteri
    (fun i (arow, op, b) ->
      Array.blit arow 0 a.(i) 0 n;
      a.(i).(n_cols) <- b;
      (match op with
      | Le ->
        a.(i).(!slack_idx) <- 1.0;
        basis.(i) <- !slack_idx;
        incr slack_idx
      | Ge ->
        a.(i).(!slack_idx) <- -1.0;
        incr slack_idx;
        a.(i).(!art_idx) <- 1.0;
        basis.(i) <- !art_idx;
        incr art_idx
      | Eq ->
        a.(i).(!art_idx) <- 1.0;
        basis.(i) <- !art_idx;
        incr art_idx))
    rows;
  let t = { a; basis; m; n_cols } in
  let is_artificial j = j >= n + n_slack in
  (* Phase 1: maximize -(sum of artificials). *)
  if n_art > 0 then begin
    let obj1 = Array.make n_cols 0.0 in
    for j = n + n_slack to n_cols - 1 do
      obj1.(j) <- -1.0
    done;
    match run_phase t obj1 ~allowed:(fun _ -> true) with
    | `Unbounded -> assert false (* phase-1 objective is bounded by 0 *)
    | `Optimal ->
      if objective_value t obj1 < -.1e-7 then raise Exit
  end;
  (* Drive any zero-valued artificials out of the basis when possible. *)
  for i = 0 to m - 1 do
    if is_artificial t.basis.(i) then begin
      let found = ref (-1) in
      for j = 0 to n + n_slack - 1 do
        if !found < 0 && Float.abs t.a.(i).(j) > 1e-7 then found := j
      done;
      if !found >= 0 then pivot t ~row:i ~col:!found
    end
  done;
  (* Phase 2. *)
  let obj2 = Array.make n_cols 0.0 in
  Array.blit c 0 obj2 0 n;
  let allowed j = not (is_artificial j) in
  match run_phase t obj2 ~allowed with
  | `Unbounded -> Unbounded
  | `Optimal ->
    let x = Array.make n 0.0 in
    for i = 0 to m - 1 do
      if t.basis.(i) < n then x.(t.basis.(i)) <- t.a.(i).(n_cols)
    done;
    Optimal (x, objective_value t obj2)

let maximize ~c ~rows = try solve_max ~c ~rows with Exit -> Infeasible

let minimize ~c ~rows =
  match maximize ~c:(Array.map (fun v -> -.v) c) ~rows with
  | Optimal (x, v) -> Optimal (x, -.v)
  | (Infeasible | Unbounded) as o -> o
