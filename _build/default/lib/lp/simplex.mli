(** Dense two-phase primal simplex.

    The optimal baselines of Section 5.2.2 need exact solutions of
    linear programs over the airtime polytopes (max-throughput flow
    for a single flow; the Frank–Wolfe linear oracle for utility
    maximization with several flows). Paper-scale instances are tiny
    (hundreds of variables, ~100 rows), so a dense tableau simplex
    with Bland's anti-cycling rule is entirely adequate and has no
    external dependencies.

    Problems are stated over variables [x >= 0]:
    maximize [c . x] subject to rows [a_i . x (<= | = | >=) b_i].
    Right-hand sides may be negative (rows are normalized
    internally). *)

type op = Le | Eq | Ge

type outcome =
  | Optimal of float array * float  (** solution vector and objective *)
  | Infeasible
  | Unbounded

val maximize :
  c:float array -> rows:(float array * op * float) list -> outcome
(** Solve. Raises [Invalid_argument] if a row's coefficient vector
    length differs from [c]'s. Numerical tolerance is 1e-9; feasible
    solutions are exact vertices of the constraint polytope. *)

val minimize :
  c:float array -> rows:(float array * op * float) list -> outcome
(** [maximize] on the negated objective, with the objective value
    sign-corrected. *)
