lib/experiments/mac_fairness.ml: Common Csma List Printf Rng Table
