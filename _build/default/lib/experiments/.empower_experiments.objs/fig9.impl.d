lib/experiments/fig9.ml: Array Brute_force Empower Engine Float List Multipath Paths Printf Stats Table Update Workload
