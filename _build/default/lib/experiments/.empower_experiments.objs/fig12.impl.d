lib/experiments/fig12.ml: Array Empower Engine Float List Printf Rng Runner Schemes Stats Table Testbed
