lib/experiments/metric_comparison.ml: Array Builder Cc_result Common Domain List Metrics Multi_cc Printf Problem Rng Stats Table Update
