lib/experiments/fig11.ml: Array Empower Engine List Printf Rng Runner Schemes Table Testbed
