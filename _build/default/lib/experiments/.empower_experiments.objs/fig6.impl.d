lib/experiments/fig6.ml: Array Builder Common Domain List Opt_solver Printf Rate_region Rng Schemes Stats Table
