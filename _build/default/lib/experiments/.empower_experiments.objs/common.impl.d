lib/experiments/common.ml: Array Builder Enterprise List Printf Residential Rng Sys
