lib/experiments/fig10.ml: Array Brute_force Builder Cc_result Common Domain List Multi_cc Multigraph Multipath Printf Problem Rng Schemes Stats Table Testbed
