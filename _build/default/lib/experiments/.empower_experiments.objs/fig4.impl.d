lib/experiments/fig4.ml: Array Common Float List Printf Rng Schemes Stats Table
