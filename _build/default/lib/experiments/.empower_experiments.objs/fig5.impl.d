lib/experiments/fig5.ml: Array Common Float List Printf Rng Schemes Stats Table
