lib/experiments/ablations.mli:
