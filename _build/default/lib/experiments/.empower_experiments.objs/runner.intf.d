lib/experiments/runner.mli: Builder Empower Engine Paths Schemes Workload
