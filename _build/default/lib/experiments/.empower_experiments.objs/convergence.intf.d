lib/experiments/convergence.mli: Common
