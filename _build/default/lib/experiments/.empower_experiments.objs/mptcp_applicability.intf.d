lib/experiments/mptcp_applicability.mli:
