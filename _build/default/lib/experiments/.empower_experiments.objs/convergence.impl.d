lib/experiments/convergence.ml: Array Backpressure Builder Cc_result Common Domain Float List Multi_cc Multipath Option Printf Problem Rng Stats Table
