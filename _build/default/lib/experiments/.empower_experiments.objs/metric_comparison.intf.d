lib/experiments/metric_comparison.mli: Common
