lib/experiments/mac_fairness.mli: Csma
