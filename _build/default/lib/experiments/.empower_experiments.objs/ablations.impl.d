lib/experiments/ablations.ml: Array Builder Cc_result Common Domain Empower Engine List Multi_cc Multipath Paths Printf Problem Residential Rng Runner Schemes Stats Table Testbed Update
