lib/experiments/fig13.ml: Array Empower Engine List Paths Printf Rng Runner Schemes Table Testbed
