lib/experiments/mptcp_applicability.ml: Builder Common Domain List Multigraph Multipath Paths Printf Rng Testbed
