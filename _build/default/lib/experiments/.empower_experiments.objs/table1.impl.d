lib/experiments/table1.ml: Array Empower Engine Float List Option Printf Rng Runner Schemes Stats Table Testbed Workload
