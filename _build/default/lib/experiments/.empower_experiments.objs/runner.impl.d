lib/experiments/runner.ml: Empower Engine List Schemes Stats Update Workload
