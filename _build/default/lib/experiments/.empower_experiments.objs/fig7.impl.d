lib/experiments/fig7.ml: Array Builder Common Domain Float List Opt_solver Printf Rate_region Rng Schemes Stats Table
