lib/experiments/common.mli: Builder Rng
