type sample = {
  time : float;
  cc_route_rates : float array;
  received : float;
}

type data = {
  series : sample list;
  phase_switch : float;
  mean_sp : float;
  mean_empower : float;
  delta : float;
}

let run ?(seed = 13) ?(phase_seconds = 250.0) ?(delta = 0.3) () =
  let inst = Testbed.generate (Rng.create 4242) in
  let net = Runner.network inst Schemes.Empower in
  let src = Testbed.node 9 and dst = Testbed.node 13 in
  (* Phase 1: plain TCP on the single-path route, no controller. *)
  let sp_rr = Runner.routes_and_rates net Schemes.Sp ~src ~dst in
  let spec1 = Runner.flow_spec ~transport:Engine.Tcp_transport ~src ~dst sp_rr in
  let config1 = { Engine.default_config with enable_cc = false } in
  let res1 =
    Empower.simulate ~config:config1 ~seed net ~flows:[ spec1 ] ~duration:phase_seconds
  in
  (* Phase 2: EMPoWER, two routes, delta margin, delay equalization. *)
  let mp_rr = Runner.routes_and_rates net Schemes.Empower ~src ~dst in
  let spec2 = Runner.flow_spec ~transport:Engine.Tcp_transport ~src ~dst mp_rr in
  let config2 =
    { Engine.default_config with delta; delay_equalize = true }
  in
  let res2 =
    Empower.simulate ~config:config2 ~seed:(seed + 1) net ~flows:[ spec2 ]
      ~duration:phase_seconds
  in
  let f1 = res1.Engine.flows.(0) and f2 = res2.Engine.flows.(0) in
  let rates_of fr t =
    let best = ref [||] and bestd = ref infinity in
    List.iter
      (fun (ts, xs) ->
        let d = Float.abs (ts -. t) in
        if d < !bestd then begin
          bestd := d;
          best := xs
        end)
      fr.Engine.rate_series;
    !best
  in
  let series1 =
    List.map
      (fun (t, gp) -> { time = t; cc_route_rates = [||]; received = gp })
      f1.Engine.goodput_series
  in
  let series2 =
    List.map
      (fun (t, gp) ->
        { time = t +. phase_seconds; cc_route_rates = rates_of f2 t; received = gp })
      f2.Engine.goodput_series
  in
  let mean_of fr skip =
    Stats.mean
      (List.filter_map
         (fun (t, gp) -> if t > skip then Some gp else None)
         fr.Engine.goodput_series)
  in
  {
    series = series1 @ series2;
    phase_switch = phase_seconds;
    mean_sp = mean_of f1 20.0;
    mean_empower = mean_of f2 20.0;
    delta;
  }

let print data =
  print_endline
    (Printf.sprintf
       "Figure 12: TCP Flow 9->13; SP-w/o-CC until %.0f s, then EMPoWER (delta=%.1f)"
       data.phase_switch data.delta);
  let rows =
    List.filter_map
      (fun s ->
        if int_of_float s.time mod 10 = 0 then begin
          let total = Array.fold_left ( +. ) 0.0 s.cc_route_rates in
          Some
            [
              Table.fmt_float s.time;
              (if Array.length s.cc_route_rates = 0 then "-" else Table.fmt_float total);
              Table.fmt_float s.received;
            ]
        end
        else None)
      data.series
  in
  Table.print_table ~header:[ "t(s)"; "CC total rate"; "TCP received" ] ~rows;
  Printf.printf "mean TCP goodput: %.1f Mbps single-path w/o CC, %.1f Mbps EMPoWER (+%.0f%%)\n"
    data.mean_sp data.mean_empower
    (100.0 *. ((data.mean_empower /. Float.max 0.1 data.mean_sp) -. 1.0))
