type data = {
  pairs : int;
  ratios : (string * float list) list;
  early : float list;
  late : float list;
  spbf_ratio : float list;
}

let testbed_opts =
  { Schemes.default_options with delta = 0.05; estimate_noise = 0.02 }

let scheme_list =
  [
    ("MP-2bp", Schemes.Mp_2bp);
    ("SP", Schemes.Sp);
    ("SP-WiFi", Schemes.Sp_wifi);
    ("MP-mWiFi", Schemes.Mp_mwifi);
  ]

let run ?(pairs = 50) ?(seed = 10) () =
  let master = Rng.create seed in
  let inst = Testbed.generate (Rng.create 4242) in
  let g = Builder.graph inst Builder.Hybrid in
  let dom = Domain.of_instance inst Builder.Hybrid g in
  let gw = Builder.graph inst Builder.Single_wifi in
  let domw = Domain.of_instance inst Builder.Single_wifi gw in
  let acc =
    List.map (fun (nm, _) -> (nm, ref []))
      (scheme_list @ [ ("SP-bf", Schemes.Sp); ("SP-WiFi-bf", Schemes.Sp) ])
  in
  let early = ref [] and late = ref [] and spbf_ratio = ref [] in
  let n = Multigraph.n_nodes g in
  for _ = 1 to pairs do
    let rng = Rng.split master in
    let src = Rng.int rng n in
    let dst =
      let rec go () =
        let d = Rng.int rng n in
        if d = src then go () else d
      in
      go ()
    in
    let flow = (src, dst) in
    let t_emp =
      (Schemes.evaluate ~opts:testbed_opts (Rng.copy rng) inst Schemes.Empower
         ~flows:[ flow ]).(0)
    in
    if t_emp > 0.1 then begin
      let record nm v =
        let cell = List.assoc nm acc in
        cell := (v /. t_emp) :: !cell
      in
      List.iter
        (fun (nm, s) ->
          record nm
            (Schemes.evaluate ~opts:testbed_opts (Rng.copy rng) inst s
               ~flows:[ flow ]).(0))
        scheme_list;
      let spbf = Brute_force.sp_bf g dom ~src ~dst in
      record "SP-bf" spbf;
      spbf_ratio := (spbf /. t_emp) :: !spbf_ratio;
      record "SP-WiFi-bf" (Brute_force.sp_bf ~csc:false gw domw ~src ~dst);
      (* Convergence trace: controller on EMPoWER's routes, warm
         start, 1 slot = 100 ms. *)
      let comb = Multipath.find g dom ~src ~dst in
      (match Multipath.routes comb with
      | [] -> ()
      | routes ->
        let p = Problem.make ~delta:0.05 g dom ~flows:[ routes ] in
        let x_init = Array.of_list (List.map snd comb.Multipath.paths) in
        let res = Multi_cc.solve ~x_init ~slots:2200 p in
        let final = res.Cc_result.flow_rates.(0) in
        if final > 0.1 then begin
          let window lo hi =
            let acc = ref 0.0 and n = ref 0 in
            for t = lo to hi - 1 do
              acc := !acc +. res.Cc_result.trace.(t).(0);
              incr n
            done;
            !acc /. float_of_int !n
          in
          early := (window 100 200 /. final) :: !early;
          late := (window 1900 2000 /. final) :: !late
        end)
    end
  done;
  {
    pairs;
    ratios = List.map (fun (nm, cell) -> (nm, List.rev !cell)) acc;
    early = List.rev !early;
    late = List.rev !late;
    spbf_ratio = List.rev !spbf_ratio;
  }

let print data =
  let series =
    List.filter_map
      (fun (nm, xs) ->
        match xs with [] -> None | _ -> Some (nm, Stats.Ecdf.of_list xs))
      data.ratios
  in
  Table.print_cdf_grid
    ~title:
      (Printf.sprintf "Figure 10 (left): CDF of T_X / T_EMPoWER, %d testbed pairs"
         data.pairs)
    ~xlabel:"ratio"
    ~grid:(Table.log_grid ~lo:0.1 ~hi:3.0 ~n:14)
    ~series;
  (match List.assoc_opt "MP-mWiFi" data.ratios with
  | Some (_ :: _ as xs) ->
    Printf.printf "EMPoWER beats MP-mWiFi on %s of pairs (max EMPoWER gain %.1fx, max mWiFi gain %.1fx)\n"
      (Common.percent (Stats.fraction_below xs 1.0))
      (1.0 /. Stats.minimum xs) (Stats.maximum xs)
  | _ -> ());
  (match data.spbf_ratio with
  | _ :: _ ->
    Printf.printf "EMPoWER beats SP-bf on %s of pairs\n"
      (Common.percent (Stats.fraction_below data.spbf_ratio 1.0))
  | [] -> ());
  match (data.early, data.late) with
  | _ :: _, _ :: _ ->
    print_endline "Figure 10 (right): throughput vs final";
    Table.print_cdf_grid ~title:"" ~xlabel:"fraction of final"
      ~grid:(Table.linear_grid ~lo:0.4 ~hi:1.2 ~n:9)
      ~series:
        [
          ("after 10-20s", Stats.Ecdf.of_list data.early);
          ("after 190-200s", Stats.Ecdf.of_list data.late);
          ("SP-bf", Stats.Ecdf.of_list data.spbf_ratio);
        ];
    Printf.printf "within 80%% of final after 10s: %s of flows\n"
      (Common.percent (Stats.fraction_at_least data.early 0.8))
  | _ -> ()
