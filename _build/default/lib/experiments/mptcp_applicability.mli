(** Section 7's MPTCP-applicability measurement.

    MPTCP exploits multiple paths only when the end hosts expose
    several interfaces (or routers do equal-cost splitting): if the
    client reaches every path through one interface, MPTCP sees a
    single subflow. The paper reports that on their testbed, "34% of
    source-destination pairs between which multiple paths exist would
    not support MPTCP, because the interface used by the client is
    common to the different paths".

    We rerun the census on the synthetic testbed: for every ordered
    pair with EMPoWER-multipath (>= 2 routes), check whether all
    routes enter the destination over the same interface
    (technology). EMPoWER, operating at layer 2.5 inside the network,
    is indifferent to this. *)

type data = {
  pairs : int;             (** ordered pairs examined *)
  multipath_pairs : int;   (** pairs where EMPoWER uses >= 2 routes *)
  mptcp_blocked : int;     (** of those: all routes share the client's interface *)
  blocked_fraction : float;
}

val run : ?seed:int -> unit -> data
(** Census over all 22x21 ordered testbed pairs. *)

val print : data -> unit
