type data = {
  topology : Common.topology;
  runs : int;
  ratios : (string * float list) list;
}

let scheme_list =
  [
    ("conservative opt", None);
    ("EMPoWER", Some Schemes.Empower);
    ("MP-2bp", Some Schemes.Mp_2bp);
    ("MP-w/o-CC", Some Schemes.Mp_wo_cc);
    ("SP", Some Schemes.Sp);
  ]

let run ?(runs = Common.runs_scaled 60) ?(seed = 3) topology =
  let master = Rng.create seed in
  let acc = List.map (fun (nm, _) -> (nm, ref [])) scheme_list in
  for _ = 1 to runs do
    let rng = Rng.split master in
    let inst = Common.generate topology rng in
    let src, dst = Common.random_flow rng inst in
    let g = Builder.graph inst Builder.Hybrid in
    let dom = Domain.of_instance inst Builder.Hybrid g in
    let t_opt = Opt_solver.max_throughput Rate_region.Exact g dom ~src ~dst in
    if t_opt > 0.1 then begin
      let record name v =
        let cell = List.assoc name acc in
        cell := (v /. t_opt) :: !cell
      in
      record "conservative opt"
        (Opt_solver.max_throughput Rate_region.Conservative g dom ~src ~dst);
      List.iter
        (fun (nm, scheme) ->
          match scheme with
          | None -> ()
          | Some s ->
            let rates = Schemes.evaluate (Rng.copy rng) inst s ~flows:[ (src, dst) ] in
            record nm rates.(0))
        scheme_list
    end
  done;
  { topology; runs; ratios = List.map (fun (nm, cell) -> (nm, List.rev !cell)) acc }

let fraction_within data ~scheme ~loss =
  match List.assoc_opt scheme data.ratios with
  | None | Some [] -> 0.0
  | Some xs -> Stats.fraction_at_least xs (1.0 -. loss)

let print data =
  let series =
    List.filter_map
      (fun (nm, xs) ->
        match xs with [] -> None | _ -> Some (nm, Stats.Ecdf.of_list xs))
      data.ratios
  in
  Table.print_cdf_grid
    ~title:
      (Printf.sprintf "Figure 6 (%s): CDF of T_X / T_optimal (%d runs)"
         (Common.topology_name data.topology) data.runs)
    ~xlabel:"ratio"
    ~grid:(Table.linear_grid ~lo:0.3 ~hi:1.05 ~n:16)
    ~series;
  Printf.printf "EMPoWER within 10%% of conservative opt... EMPoWER>=0.9: %s\n"
    (Common.percent (fraction_within data ~scheme:"EMPoWER" ~loss:0.10));
  Printf.printf "EMPoWER at optimal (>= 0.99 of T_opt): %s\n"
    (Common.percent (fraction_within data ~scheme:"EMPoWER" ~loss:0.01));
  Printf.printf "EMPoWER within 15%% of optimal: %s\n"
    (Common.percent (fraction_within data ~scheme:"EMPoWER" ~loss:0.15))
