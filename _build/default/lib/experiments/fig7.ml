type data = {
  topology : Common.topology;
  runs : int;
  ratios : (string * float list) list;
}

let utility rates =
  Array.fold_left (fun acc x -> acc +. log (1.0 +. Float.max 0.0 x)) 0.0 rates

let scheme_list =
  [
    ("conservative opt", None);
    ("EMPoWER", Some Schemes.Empower);
    ("MP-2bp", Some Schemes.Mp_2bp);
    ("MP-w/o-CC", Some Schemes.Mp_wo_cc);
    ("SP", Some Schemes.Sp);
  ]

let run ?(runs = Common.runs_scaled 40) ?(seed = 4) topology =
  let master = Rng.create seed in
  let acc = List.map (fun (nm, _) -> (nm, ref [])) scheme_list in
  for _ = 1 to runs do
    let rng = Rng.split master in
    let inst = Common.generate topology rng in
    let flows = Common.random_flows rng inst ~n:3 in
    let g = Builder.graph inst Builder.Hybrid in
    let dom = Domain.of_instance inst Builder.Hybrid g in
    let u_opt = utility (Opt_solver.max_utility Rate_region.Exact g dom ~flows) in
    if u_opt > 0.1 then begin
      let record name u =
        let cell = List.assoc name acc in
        cell := (u /. u_opt) :: !cell
      in
      record "conservative opt"
        (utility (Opt_solver.max_utility Rate_region.Conservative g dom ~flows));
      List.iter
        (fun (nm, scheme) ->
          match scheme with
          | None -> ()
          | Some s -> record nm (utility (Schemes.evaluate (Rng.copy rng) inst s ~flows)))
        scheme_list
    end
  done;
  { topology; runs; ratios = List.map (fun (nm, cell) -> (nm, List.rev !cell)) acc }

let print data =
  let series =
    List.filter_map
      (fun (nm, xs) ->
        match xs with [] -> None | _ -> Some (nm, Stats.Ecdf.of_list xs))
      data.ratios
  in
  Table.print_cdf_grid
    ~title:
      (Printf.sprintf
         "Figure 7 (%s): CDF of U_X / U_optimal, 3 contending flows (%d runs)"
         (Common.topology_name data.topology) data.runs)
    ~xlabel:"ratio"
    ~grid:(Table.linear_grid ~lo:0.6 ~hi:1.02 ~n:15)
    ~series;
  List.iter
    (fun (nm, xs) ->
      if xs <> [] then Printf.printf "mean U_%s / U_opt = %.3f\n" nm (Stats.mean xs))
    data.ratios
