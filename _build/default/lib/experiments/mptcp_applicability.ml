type data = {
  pairs : int;
  multipath_pairs : int;
  mptcp_blocked : int;
  blocked_fraction : float;
}

let run ?(seed = 4242) () =
  let inst = Testbed.generate (Rng.create seed) in
  let g = Builder.graph inst Builder.Hybrid in
  let dom = Domain.of_instance inst Builder.Hybrid g in
  let n = Multigraph.n_nodes g in
  let pairs = ref 0 and multi = ref 0 and blocked = ref 0 in
  for src = 0 to n - 1 do
    for dst = 0 to n - 1 do
      if src <> dst then begin
        incr pairs;
        let comb = Multipath.find g dom ~src ~dst in
        let routes = Multipath.routes comb in
        if List.length routes >= 2 then begin
          incr multi;
          (* The client-side interface of a route is the technology of
             its last hop (the one the destination receives on). *)
          let last_tech p =
            let links = p.Paths.links in
            (Multigraph.link g (List.nth links (List.length links - 1))).Multigraph.tech
          in
          let techs = List.sort_uniq compare (List.map last_tech routes) in
          if List.length techs = 1 then incr blocked
        end
      end
    done
  done;
  {
    pairs = !pairs;
    multipath_pairs = !multi;
    mptcp_blocked = !blocked;
    blocked_fraction =
      (if !multi = 0 then 0.0 else float_of_int !blocked /. float_of_int !multi);
  }

let print data =
  print_endline "Section 7: MPTCP applicability on the testbed";
  Printf.printf
    "%d ordered pairs; EMPoWER uses several routes on %d; on %d of those (%s)\n"
    data.pairs data.multipath_pairs data.mptcp_blocked
    (Common.percent data.blocked_fraction);
  print_endline
    "every route reaches the client over the same interface, so MPTCP would see";
  print_endline
    "a single subflow there (the paper measured 34%); EMPoWER still multipaths."
