type data = {
  topology : Common.topology;
  runs : int;
  empower_cold : float list;
  empower_warm : float list;
  backpressure : float list;
}

let empower_convergence g dom ~src ~dst ~warm =
  let comb = Multipath.find g dom ~src ~dst in
  match Multipath.routes comb with
  | [] -> None
  | routes ->
    let p = Problem.make g dom ~flows:[ routes ] in
    let x_init =
      if warm then Some (Array.of_list (List.map snd comb.Multipath.paths))
      else None
    in
    let res = Multi_cc.solve ?x_init ~slots:6000 p in
    Option.map float_of_int (Cc_result.convergence_slot res)

let run ?(runs = Common.runs_scaled 30) ?(seed = 5) ?(bp_slots = 20000) topology =
  let master = Rng.create seed in
  let cold = ref [] and warm = ref [] and bp = ref [] in
  for _ = 1 to runs do
    let rng = Rng.split master in
    let inst = Common.generate topology rng in
    let src, dst = Common.random_flow rng inst in
    let g = Builder.graph inst Builder.Hybrid in
    let dom = Domain.of_instance inst Builder.Hybrid g in
    match empower_convergence g dom ~src ~dst ~warm:false with
    | None -> ()
    | Some c ->
      cold := c :: !cold;
      (match empower_convergence g dom ~src ~dst ~warm:true with
      | Some w -> warm := w :: !warm
      | None -> ());
      let r = Backpressure.run ~slots:bp_slots g dom ~flows:[ (src, dst) ] in
      let b =
        match r.Backpressure.convergence_slot with
        | Some s -> float_of_int s
        | None -> float_of_int bp_slots
      in
      bp := b :: !bp
  done;
  {
    topology;
    runs;
    empower_cold = List.rev !cold;
    empower_warm = List.rev !warm;
    backpressure = List.rev !bp;
  }

let print data =
  print_endline
    (Printf.sprintf "Convergence (%s, %d runs): slots to reach within 1%% of final"
       (Common.topology_name data.topology) data.runs);
  let row name xs =
    match xs with
    | [] -> [ name; "-"; "-"; "-" ]
    | _ ->
      [
        name;
        Table.fmt_float (Stats.mean xs);
        Table.fmt_float (Stats.median xs);
        Table.fmt_float (Stats.percentile xs 90.0);
      ]
  in
  Table.print_table
    ~header:[ "scheme"; "mean"; "median"; "p90" ]
    ~rows:
      [
        row "EMPoWER (warm start)" data.empower_warm;
        row "EMPoWER (cold start)" data.empower_cold;
        row "backpressure optimal" data.backpressure;
      ];
  match (data.empower_warm, data.backpressure) with
  | _ :: _, _ :: _ ->
    (* EMPoWER operates warm (injection starts at the routing-estimated
       rates); the cold-start row is a diagnostic of the proximal ramp. *)
    Printf.printf "backpressure/EMPoWER mean ratio: %.0fx\n"
      (Stats.mean data.backpressure /. Float.max 1.0 (Stats.mean data.empower_warm))
  | _ -> ()
