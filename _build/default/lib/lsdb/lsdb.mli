(** The link-state database and its flooding discipline.

    Each node keeps the freshest LSA per origin (higher sequence
    number wins) with the time it was installed. {!insert} returns
    the flooding decision: a new-or-fresher LSA is installed and must
    be re-broadcast on all interfaces; stale and duplicate ones are
    dropped — the standard OSPF-style rule that terminates flooding
    in (diameter) rounds with at most one forward per node per LSA.

    {!graph} assembles the hybrid multigraph from the current
    database: an edge exists when either endpoint advertises it (the
    paper's links are bidirectional; estimates from the two ends are
    averaged when both are present), which is what a flow source
    feeds to the Section 3 routing algorithms. *)

type t

val create : node:int -> t
(** The database of one node (the id only matters for debugging). *)

val node : t -> int

val insert : t -> now:float -> Lsa.t -> [ `Installed | `Duplicate | `Stale ]
(** Flooding decision for a received (or self-originated) LSA:
    [`Installed] — new origin or higher sequence, forward it;
    [`Duplicate] — same sequence as stored, drop;
    [`Stale] — lower sequence, drop. *)

val lookup : t -> origin:int -> Lsa.t list
(** Freshest LSA fragments of an origin, ordered by fragment id
    (empty when unknown). *)

val entries : t -> Lsa.t list
(** All stored LSAs, ordered by origin. *)

val purge : t -> now:float -> max_age:float -> int
(** Drop LSAs installed more than [max_age] seconds ago (dead nodes
    stop refreshing; their links must not linger). Returns how many
    were dropped. *)

val graph : t -> n_nodes:int -> n_techs:int -> Multigraph.t
(** Build the multigraph the database implies. Advertisements that
    reference out-of-range nodes/technologies are ignored (a crashed
    or malicious node must not poison routing). *)

(** Synchronous flooding over a connectivity relation — the control
    plane's convergence, testable without the packet engine. *)
module Flood : sig
  type stats = {
    rounds : int;     (** rounds until quiescence *)
    messages : int;   (** total LSA transmissions *)
  }

  val propagate :
    neighbors:(int -> int list) -> dbs:t array -> from:int -> Lsa.t -> stats
  (** Inject an LSA at node [from] and flood until no database
      changes: each round, every node that installed something new
      re-broadcasts it to its neighbors. [neighbors] must be
      symmetric. *)

  val full_exchange :
    neighbors:(int -> int list) -> dbs:t array -> originate:(int -> Lsa.t) -> stats
  (** Every node originates its own LSA and floods; returns the
      aggregate cost. Afterwards every connected node's database
      contains every reachable origin's LSA. *)
end
