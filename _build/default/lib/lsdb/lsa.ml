type link_entry = {
  neighbor : int;
  tech : int;
  capacity_mbps : float;
}

type t = {
  origin : int;
  seq : int;
  fragment : int;
  links : link_entry list;
}

let max_links = 31

let make ?(fragment = 0) ~origin ~seq links =
  if origin < 0 || origin > 0xFFFF then invalid_arg "Lsa.make: bad origin";
  if seq < 0 || seq > 0xFFFFFFFF then invalid_arg "Lsa.make: bad seq";
  if fragment < 0 || fragment > 0xFF then invalid_arg "Lsa.make: bad fragment";
  if List.length links > max_links then invalid_arg "Lsa.make: too many links";
  List.iter
    (fun e ->
      if e.neighbor < 0 || e.neighbor > 0xFFFF then invalid_arg "Lsa.make: bad neighbor";
      if e.tech < 0 || e.tech > 0xFF then invalid_arg "Lsa.make: bad tech";
      if (not (Float.is_finite e.capacity_mbps)) || e.capacity_mbps < 0.0 then
        invalid_arg "Lsa.make: bad capacity")
    links;
  { origin; seq; fragment; links }

let put_u16 b off v =
  Bytes.set b off (Char.chr ((v lsr 8) land 0xFF));
  Bytes.set b (off + 1) (Char.chr (v land 0xFF))

let get_u16 b off = (Char.code (Bytes.get b off) lsl 8) lor Char.code (Bytes.get b (off + 1))

let put_u32 b off v =
  put_u16 b off ((v lsr 16) land 0xFFFF);
  put_u16 b (off + 2) (v land 0xFFFF)

let get_u32 b off = (get_u16 b off lsl 16) lor get_u16 b (off + 2)

let kbps_of_mbps c = min 0xFFFFFFFF (int_of_float (Float.round (c *. 1000.0)))

let encode t =
  let n = List.length t.links in
  let b = Bytes.make (8 + (8 * n)) '\000' in
  put_u16 b 0 t.origin;
  put_u32 b 2 t.seq;
  Bytes.set b 6 (Char.chr n);
  Bytes.set b 7 (Char.chr t.fragment);
  List.iteri
    (fun i e ->
      let off = 8 + (8 * i) in
      put_u16 b off e.neighbor;
      Bytes.set b (off + 2) (Char.chr e.tech);
      put_u32 b (off + 4) (kbps_of_mbps e.capacity_mbps))
    t.links;
  b

let decode b =
  let len = Bytes.length b in
  if len < 8 then invalid_arg "Lsa.decode: truncated header";
  let n = Char.code (Bytes.get b 6) in
  if n > max_links then invalid_arg "Lsa.decode: bad link count";
  if len <> 8 + (8 * n) then invalid_arg "Lsa.decode: length mismatch";
  let links =
    List.init n (fun i ->
        let off = 8 + (8 * i) in
        if Bytes.get b (off + 3) <> '\000' then
          invalid_arg "Lsa.decode: reserved byte set";
        {
          neighbor = get_u16 b off;
          tech = Char.code (Bytes.get b (off + 2));
          capacity_mbps = float_of_int (get_u32 b (off + 4)) /. 1000.0;
        })
  in
  { origin = get_u16 b 0; seq = get_u32 b 2; fragment = Char.code (Bytes.get b 7); links }

let size t = 8 + (8 * List.length t.links)

let equal a b =
  a.origin = b.origin && a.seq = b.seq && a.fragment = b.fragment
  && List.length a.links = List.length b.links
  && List.for_all2
       (fun x y ->
         x.neighbor = y.neighbor && x.tech = y.tech
         && kbps_of_mbps x.capacity_mbps = kbps_of_mbps y.capacity_mbps)
       a.links b.links

let pp ppf t =
  Format.fprintf ppf "lsa[%d#%d.%d:%s]" t.origin t.seq t.fragment
    (String.concat ";"
       (List.map
          (fun e -> Printf.sprintf "%d/t%d@%.1f" e.neighbor e.tech e.capacity_mbps)
          t.links))
