lib/lsdb/lsdb.ml: Array Hashtbl List Lsa Multigraph
