lib/lsdb/lsa.ml: Bytes Char Float Format List Printf String
