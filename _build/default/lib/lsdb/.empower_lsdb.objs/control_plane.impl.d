lib/lsdb/control_plane.ml: Array Float List Lsa Lsdb Multigraph Rng
