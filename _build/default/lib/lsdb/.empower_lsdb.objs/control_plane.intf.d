lib/lsdb/control_plane.mli: Lsa Lsdb Multigraph Rng
