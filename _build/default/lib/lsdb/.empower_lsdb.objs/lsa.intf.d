lib/lsdb/lsa.mli: Format
