lib/lsdb/lsdb.mli: Lsa Multigraph
