let advertise ?(noise = 0.0) ?(seq = 1) rng g ~node =
  let entries =
    List.filter_map
      (fun l ->
        if Multigraph.usable g l then begin
          let lk = Multigraph.link g l in
          let cap = Multigraph.capacity g l in
          let est =
            if noise <= 0.0 then cap
            else
              Float.max 0.001
                (cap *. (1.0 +. Rng.gaussian rng ~mean:0.0 ~std:noise))
          in
          Some
            {
              Lsa.neighbor = lk.Multigraph.dst;
              tech = lk.Multigraph.tech;
              capacity_mbps = est;
            }
        end
        else None)
      (Multigraph.out_links g node)
  in
  (* Chunk into max_links-sized LSAs sharing the sequence number. *)
  let rec chunk acc = function
    | [] -> List.rev acc
    | rest ->
      let take = min Lsa.max_links (List.length rest) in
      let now, later =
        (List.filteri (fun i _ -> i < take) rest, List.filteri (fun i _ -> i >= take) rest)
      in
      chunk (now :: acc) later
  in
  match entries with
  | [] -> []
  | _ ->
    List.mapi
      (fun fragment links -> Lsa.make ~fragment ~origin:node ~seq links)
      (chunk [] entries)

let converged_view ?noise rng g ~viewer =
  let n = Multigraph.n_nodes g in
  let dbs = Array.init n (fun node -> Lsdb.create ~node) in
  let neighbors u =
    List.filter_map
      (fun l ->
        if Multigraph.usable g l then Some (Multigraph.link g l).Multigraph.dst
        else None)
      (Multigraph.out_links g u)
    |> List.sort_uniq compare
  in
  let rounds = ref 0 and messages = ref 0 in
  for node = 0 to n - 1 do
    List.iter
      (fun lsa ->
        let s = Lsdb.Flood.propagate ~neighbors ~dbs ~from:node lsa in
        rounds := max !rounds s.Lsdb.Flood.rounds;
        messages := !messages + s.Lsdb.Flood.messages)
      (advertise ?noise rng g ~node)
  done;
  let view =
    Lsdb.graph dbs.(viewer) ~n_nodes:n ~n_techs:(Multigraph.n_techs g)
  in
  (view, { Lsdb.Flood.rounds = !rounds; messages = !messages })
