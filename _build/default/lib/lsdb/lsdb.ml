type entry = {
  lsa : Lsa.t;
  mutable installed_at : float;
}

type t = {
  node : int;
  table : (int * int, entry) Hashtbl.t;  (* origin, fragment -> freshest *)
}

let create ~node = { node; table = Hashtbl.create 32 }

let node t = t.node

let insert t ~now (lsa : Lsa.t) =
  let key = (lsa.Lsa.origin, lsa.Lsa.fragment) in
  match Hashtbl.find_opt t.table key with
  | None ->
    Hashtbl.replace t.table key { lsa; installed_at = now };
    `Installed
  | Some e ->
    if lsa.Lsa.seq > e.lsa.Lsa.seq then begin
      Hashtbl.replace t.table key { lsa; installed_at = now };
      `Installed
    end
    else if lsa.Lsa.seq = e.lsa.Lsa.seq then `Duplicate
    else `Stale

let lookup t ~origin =
  let frags =
    Hashtbl.fold
      (fun (o, _) e acc -> if o = origin then e.lsa :: acc else acc)
      t.table []
  in
  List.sort (fun (a : Lsa.t) b -> compare a.Lsa.fragment b.Lsa.fragment) frags

let entries t =
  Hashtbl.fold (fun _ e acc -> e.lsa :: acc) t.table []
  |> List.sort (fun (a : Lsa.t) b ->
         compare (a.Lsa.origin, a.Lsa.fragment) (b.Lsa.origin, b.Lsa.fragment))

let purge t ~now ~max_age =
  let dead =
    Hashtbl.fold
      (fun origin e acc -> if now -. e.installed_at > max_age then origin :: acc else acc)
      t.table []
  in
  List.iter (Hashtbl.remove t.table) dead;
  List.length dead

let graph t ~n_nodes ~n_techs =
  (* Collect directional claims (u, v, tech) -> capacity, then build
     one edge per unordered pair+tech, averaging both ends' estimates
     when available. *)
  let claims = Hashtbl.create 64 in
  List.iter
    (fun (lsa : Lsa.t) ->
      if lsa.Lsa.origin < n_nodes then
        List.iter
          (fun (e : Lsa.link_entry) ->
            if e.Lsa.neighbor < n_nodes && e.Lsa.neighbor <> lsa.Lsa.origin
               && e.Lsa.tech < n_techs && e.Lsa.capacity_mbps > 0.0
            then begin
              let u = min lsa.Lsa.origin e.Lsa.neighbor in
              let v = max lsa.Lsa.origin e.Lsa.neighbor in
              let key = (u, v, e.Lsa.tech) in
              let prev = try Hashtbl.find claims key with Not_found -> [] in
              Hashtbl.replace claims key (e.Lsa.capacity_mbps :: prev)
            end)
          lsa.Lsa.links)
    (entries t);
  let edges =
    Hashtbl.fold
      (fun (u, v, tech) caps acc ->
        let mean = List.fold_left ( +. ) 0.0 caps /. float_of_int (List.length caps) in
        (u, v, tech, mean) :: acc)
      claims []
    |> List.sort compare
  in
  Multigraph.create ~n_nodes ~n_techs ~edges

module Flood = struct
  type stats = {
    rounds : int;
    messages : int;
  }

  let propagate ~neighbors ~dbs ~from lsa =
    let n = Array.length dbs in
    let pending = Array.make n [] in
    (match insert dbs.(from) ~now:0.0 lsa with
    | `Installed -> pending.(from) <- [ lsa ]
    | `Duplicate | `Stale -> ());
    let rounds = ref 0 and messages = ref 0 in
    let continue = ref (pending.(from) <> []) in
    while !continue do
      incr rounds;
      let next = Array.make n [] in
      Array.iteri
        (fun u to_send ->
          List.iter
            (fun l ->
              List.iter
                (fun v ->
                  incr messages;
                  match insert dbs.(v) ~now:0.0 l with
                  | `Installed -> next.(v) <- l :: next.(v)
                  | `Duplicate | `Stale -> ())
                (neighbors u))
            to_send)
        pending;
      Array.blit next 0 pending 0 n;
      continue := Array.exists (fun l -> l <> []) pending
    done;
    { rounds = !rounds; messages = !messages }

  let full_exchange ~neighbors ~dbs ~originate =
    let total_rounds = ref 0 and total_messages = ref 0 in
    Array.iteri
      (fun u _ ->
        let s = propagate ~neighbors ~dbs ~from:u (originate u) in
        total_rounds := max !total_rounds s.rounds;
        total_messages := !total_messages + s.messages)
      dbs;
    { rounds = !total_rounds; messages = !total_messages }
end
