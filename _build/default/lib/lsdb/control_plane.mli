(** Gluing the link-state machinery to a hybrid network.

    Every node advertises its egress links (capacity estimates, not
    ground truth) in one or more LSAs; databases are populated by
    flooding over the network's own connectivity; each source then
    assembles its multigraph view from its database and runs routing
    on it. {!converged_view} packages the whole cycle — what the
    paper's implementation does continuously in the background. *)

val advertise :
  ?noise:float -> ?seq:int -> Rng.t -> Multigraph.t -> node:int -> Lsa.t list
(** The LSAs node [node] originates for its usable egress links
    (chunked at {!Lsa.max_links} entries). [noise] is the relative
    std of the capacity-estimation error (default 0). *)

val converged_view :
  ?noise:float ->
  Rng.t ->
  Multigraph.t ->
  viewer:int ->
  Multigraph.t * Lsdb.Flood.stats
(** Run a full LSA exchange over the graph's own links and return
    node [viewer]'s reconstructed multigraph plus the flooding cost.
    On a connected network the reconstruction contains every usable
    link (capacities at wire precision, averaged between the two
    endpoint estimates). *)
