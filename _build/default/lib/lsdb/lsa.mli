(** Link-state advertisements for EMPoWER's control plane.

    The paper's implementation replaces ARP with its own routing
    protocol: every node periodically advertises its egress links and
    their estimated capacities so that flow sources can assemble the
    hybrid multigraph that Section 3's algorithms run on. An LSA
    carries one node's view of its own links; sequence numbers
    version it (higher wins, as in OSPF), and flooding forwards an
    LSA once per node.

    Wire format (big-endian), 8-byte header + 8 bytes per link:
    {v
    bytes 0..1  origin node id (uint16)
    bytes 2..5  sequence number (uint32)
    byte  6     number of link entries (uint8, <= 31)
    byte  7     fragment id (uint8; nodes with more than 31 links
                split their advertisement into fragments)
    then per link:
      bytes 0..1  neighbor node id (uint16)
      byte  2     technology index (uint8)
      byte  3     reserved (0)
      bytes 4..7  capacity in kbit/s (uint32)
    v} *)

type link_entry = {
  neighbor : int;        (** receiving node of the advertised link *)
  tech : int;            (** technology index *)
  capacity_mbps : float; (** estimated capacity *)
}

type t = {
  origin : int;
  seq : int;
  fragment : int;
  links : link_entry list;
}

val max_links : int
(** 31 entries per LSA (one byte of count, top bits reserved). *)

val make : ?fragment:int -> origin:int -> seq:int -> link_entry list -> t
(** Validate ranges ([Invalid_argument] on out-of-range ids, negative
    capacity, too many links). Capacities are quantized to 1 kbit/s
    on the wire. *)

val encode : t -> bytes
(** Serialize; length is [8 + 8 * length links]. *)

val decode : bytes -> t
(** Parse; [Invalid_argument] on malformed input (wrong length,
    nonzero reserved bytes). *)

val size : t -> int
(** Encoded size in bytes. *)

val equal : t -> t -> bool
(** Structural equality with capacities compared at wire precision. *)

val pp : Format.formatter -> t -> unit
