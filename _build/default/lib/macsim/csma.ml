type protocol =
  | Dcf_80211
  | Csma_1901

let protocol_name = function Dcf_80211 -> "802.11" | Csma_1901 -> "1901"

(* Backoff parameters. 802.11: CW doubles from 16 to 1024 (stage =
   number of consecutive collisions). 1901: four stages with fixed
   windows and per-stage deferral counters. *)
let cw_80211 stage = min 1024 (16 lsl stage)

let cw_1901 = [| 8; 16; 32; 64 |]
let dc_1901 = [| 0; 1; 3; 15 |]

type station = {
  mutable stage : int;
  mutable backoff : int;
  mutable dc : int;        (* 1901 deferral counter *)
  mutable successes : int;
  mutable last_success_slot : int;
  mutable gaps : float list;  (* inter-success gaps, for service_cv *)
}

type result = {
  throughput : float;
  collision_rate : float;
  jain : float;
  per_station : int array;
  service_cv : float;
}

let simulate ?(slots = 200_000) ?(frame_slots = 20) rng protocol ~n_stations =
  if n_stations < 1 then invalid_arg "Csma.simulate: n_stations < 1";
  let cw proto stage =
    match proto with
    | Dcf_80211 -> cw_80211 stage
    | Csma_1901 -> cw_1901.(min stage (Array.length cw_1901 - 1))
  in
  let fresh_backoff st =
    st.backoff <- Rng.int rng (cw protocol st.stage);
    match protocol with
    | Csma_1901 -> st.dc <- dc_1901.(min st.stage (Array.length dc_1901 - 1))
    | Dcf_80211 -> ()
  in
  let stations =
    Array.init n_stations (fun _ ->
        let st =
          { stage = 0; backoff = 0; dc = 0; successes = 0; last_success_slot = 0;
            gaps = [] }
        in
        st)
  in
  Array.iter fresh_backoff stations;
  let t = ref 0 in
  let busy_success = ref 0 and attempts = ref 0 and collisions = ref 0 in
  while !t < slots do
    let transmitters =
      Array.to_list stations |> List.filter (fun st -> st.backoff = 0)
    in
    match transmitters with
    | [] ->
      (* Idle slot: everyone counts down. *)
      Array.iter (fun st -> st.backoff <- st.backoff - 1) stations;
      Array.iter (fun st -> if st.backoff < 0 then st.backoff <- 0) stations;
      incr t
    | [ winner ] ->
      incr attempts;
      busy_success := !busy_success + frame_slots;
      winner.successes <- winner.successes + 1;
      if winner.successes > 1 then
        winner.gaps <- float_of_int (!t - winner.last_success_slot) :: winner.gaps;
      winner.last_success_slot <- !t;
      winner.stage <- 0;
      fresh_backoff winner;
      (* Everyone else senses a busy medium. *)
      Array.iter
        (fun st ->
          if st != winner then begin
            match protocol with
            | Dcf_80211 -> () (* freeze; resume after the frame *)
            | Csma_1901 ->
              (* Deferral: too many busy slots sensed in this stage
                 pushes the station deeper without transmitting. *)
              st.dc <- st.dc - 1;
              if st.dc < 0 then begin
                st.stage <- min (st.stage + 1) (Array.length cw_1901 - 1);
                fresh_backoff st
              end
          end)
        stations;
      t := !t + frame_slots
    | colliders ->
      attempts := !attempts + List.length colliders;
      collisions := !collisions + List.length colliders;
      List.iter
        (fun st ->
          st.stage <-
            (match protocol with
            | Dcf_80211 -> st.stage + 1
            | Csma_1901 -> min (st.stage + 1) (Array.length cw_1901 - 1));
          fresh_backoff st)
        colliders;
      Array.iter
        (fun st ->
          if st.backoff > 0 then begin
            match protocol with
            | Dcf_80211 -> ()
            | Csma_1901 ->
              st.dc <- st.dc - 1;
              if st.dc < 0 then begin
                st.stage <- min (st.stage + 1) (Array.length cw_1901 - 1);
                fresh_backoff st
              end
          end)
        stations;
      t := !t + frame_slots
  done;
  let per_station = Array.map (fun st -> st.successes) stations in
  let total = Array.fold_left ( + ) 0 per_station in
  let jain =
    if total = 0 then 1.0
    else begin
      let xs = Array.map float_of_int per_station in
      let s = Array.fold_left ( +. ) 0.0 xs in
      let s2 = Array.fold_left (fun acc x -> acc +. (x *. x)) 0.0 xs in
      s *. s /. (float_of_int n_stations *. s2)
    end
  in
  let service_cv =
    let cvs =
      Array.to_list stations
      |> List.filter_map (fun st ->
             match st.gaps with
             | [] | [ _ ] -> None
             | gaps ->
               let m = Stats.mean gaps in
               if m <= 0.0 then None else Some (Stats.stddev gaps /. m))
    in
    Stats.mean cvs
  in
  {
    throughput = float_of_int !busy_success /. float_of_int !t;
    collision_rate =
      (if !attempts = 0 then 0.0
       else float_of_int !collisions /. float_of_int !attempts);
    jain;
    per_station;
    service_cv;
  }
