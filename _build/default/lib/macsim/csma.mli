(** Slot-accurate CSMA/CA in a single collision domain:
    IEEE 802.11 DCF vs IEEE 1901 (HomePlug).

    The paper's footnote 4 notes that "to avoid collisions, IEEE 1901
    employs a CSMA/CA scheme relatively similar to that of 802.11"
    and leans on the authors' own MAC study [40] (Vlachou et al.,
    "Fairness of MAC protocols: IEEE 1901 vs 802.11"). This module
    reproduces that comparison at slot granularity for N saturated
    stations sharing one medium:

    - {b 802.11 DCF}: uniform backoff in [0, CW-1]; CW doubles on
      collision (CWmin 16 to CWmax 1024) and resets on success.
    - {b IEEE 1901}: four backoff stages with contention windows
      8/16/32/64 {e and a deferral counter} (DC = 0/1/3/15 per
      stage): a station that senses the medium busy more than DC
      times moves to the next stage {e without} colliding — 1901
      backs off earlier than 802.11, trading short-term fairness for
      fewer collisions under load, which is [40]'s headline finding.

    The engine-level simulator uses an abstracted MAC (perfect
    sensing + a contention-loss probability); this module is the
    ground-truth justification for that abstraction's shape and an
    ablation substrate of its own. *)

type protocol =
  | Dcf_80211
  | Csma_1901

type result = {
  throughput : float;       (** fraction of slots spent on successful frames *)
  collision_rate : float;   (** collisions / transmission attempts *)
  jain : float;             (** Jain fairness index over per-station successes *)
  per_station : int array;  (** successful frames per station *)
  service_cv : float;       (** mean coefficient of variation of a station's
                                inter-success gaps: short-term (un)fairness *)
}

val protocol_name : protocol -> string
(** ["802.11"] / ["1901"]. *)

val simulate :
  ?slots:int ->
  ?frame_slots:int ->
  Rng.t ->
  protocol ->
  n_stations:int ->
  result
(** Simulate [slots] medium slots (default 200000) with saturated
    stations sending frames of [frame_slots] slots (default 20 —
    roughly a 1-2 ms aggregate over 50 µs slots). Requires
    [n_stations >= 1]. *)
