type combination = {
  paths : (Paths.t * float) list;
  total_rate : float;
  tree_depth : int;
  tree_vertices : int;
}

let routes c = List.map fst c.paths

let find ?(n = 5) ?(csc = true) ?(max_depth = 6) ?(min_rate = 0.1)
    ?(max_vertices = 2_000) g dom ~src ~dst =
  if n < 1 then invalid_arg "Multipath.find: n < 1";
  if src = dst then invalid_arg "Multipath.find: src = dst";
  let vertices = ref 0 in
  let best = ref { paths = []; total_rate = 0.0; tree_depth = 0; tree_vertices = 0 } in
  let consider_leaf acc_paths acc_total depth =
    if acc_total > !best.total_rate then
      best :=
        { paths = List.rev acc_paths; total_rate = acc_total; tree_depth = depth;
          tree_vertices = 0 }
  in
  (* Depth-first construction of the exploration tree. The paper's
     networks have medium-wide collision domains, so every update()
     zeroes a large link set and trees stay shallow (depth <= 3
     observed); on topologies with localized interference the tree
     can branch much deeper, so we bound both the branch depth (the
     mitigation the paper itself suggests) and the total number of
     explored vertices. The bound only trims combinations of 7+
     simultaneous paths, whose extra capacity is negligible. *)
  let rec explore g depth acc_paths acc_total =
    incr vertices;
    let budget_ok = !vertices < max_vertices in
    let candidates =
      if depth >= max_depth || not budget_ok then []
      else begin
        Yen.k_shortest ~csc g ~src ~dst ~k:n
        |> List.filter_map (fun (p, _) ->
               let r = Update.path_rate g dom p in
               if r >= min_rate then Some (p, r) else None)
      end
    in
    match candidates with
    | [] -> consider_leaf acc_paths acc_total depth
    | _ ->
      List.iter
        (fun (p, r) ->
          let g' = Update.update g dom p in
          explore g' (depth + 1) ((p, r) :: acc_paths) (acc_total +. r))
        candidates
  in
  explore g 0 [] 0.0;
  { !best with tree_vertices = !vertices }
