(** Path rates and the [update(P, G)] procedure (Section 3.2).

    From Lemma 1, when λ links contend in one collision domain the
    best common rate is [(Σ d_l)^-1]. For a path [P], the rate
    supported by link [l ∈ P] is [R(l,P) = (Σ_{l' ∈ I_l ∩ P} d_l')^-1]
    and the end-to-end rate is [R(P) = min_l R(l,P)].

    [update P G] returns the multigraph view where every link in
    [∪_{l ∈ P} I_l] keeps only its idle-time fraction
    [r(l,P) = 1 - Σ_{l' ∈ I_l ∩ P} R(P) · d_l'] of its capacity —
    the resources left if traffic is sent on [P] at full rate [R(P)].
    The bottleneck link (and everything sharing its domain airtime)
    drops to zero, which is what terminates the exploration tree. *)

val rate_on_link : Multigraph.t -> Domain.t -> Paths.t -> int -> float
(** [R(l,P)] for [l ∈ P]; 0 if any involved link has zero capacity. *)

val path_rate : Multigraph.t -> Domain.t -> Paths.t -> float
(** [R(P) = min_{l ∈ P} R(l,P)] — the maximum end-to-end rate of the
    path used alone, accounting for intra-path interference. *)

val idle_fraction : Multigraph.t -> Domain.t -> Paths.t -> int -> float
(** [r(l,P)] for any link [l] of the network (clamped to [0, 1]). *)

val update : Multigraph.t -> Domain.t -> Paths.t -> Multigraph.t
(** [update g dom p] is the capacity-updated view G~. Links outside
    [∪_{l ∈ P} I_l] are untouched. *)
