let domain_path_weight g dom path l =
  (* Σ_{l' ∈ I_l ∩ P} d_l' : the airtime-per-bit that path traffic
     costs link l's collision domain. *)
  List.fold_left
    (fun acc l' ->
      if Domain.interferes dom l l' then acc +. Multigraph.d g l' else acc)
    0.0 path.Paths.links

let rate_on_link g dom path l =
  let w = domain_path_weight g dom path l in
  if Float.is_finite w && w > 0.0 then 1.0 /. w else 0.0

let path_rate g dom path =
  List.fold_left
    (fun acc l -> Float.min acc (rate_on_link g dom path l))
    infinity path.Paths.links

let idle_fraction g dom path l =
  let r = path_rate g dom path in
  if r <= 0.0 then 1.0
  else begin
    let consumed = r *. domain_path_weight g dom path l in
    Float.max 0.0 (Float.min 1.0 (1.0 -. consumed))
  end

let update g dom path =
  let caps = Multigraph.capacities g in
  let touched = Hashtbl.create 32 in
  List.iter
    (fun l -> List.iter (fun l' -> Hashtbl.replace touched l' ()) (Domain.domain dom l))
    path.Paths.links;
  Hashtbl.iter (fun l () -> caps.(l) <- caps.(l) *. idle_fraction g dom path l) touched;
  Multigraph.with_capacities g caps
