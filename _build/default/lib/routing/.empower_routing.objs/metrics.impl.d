lib/routing/metrics.ml: Array Dijkstra Domain Float List Multigraph Paths Yen
