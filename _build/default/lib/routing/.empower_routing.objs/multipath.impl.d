lib/routing/multipath.ml: List Paths Update Yen
