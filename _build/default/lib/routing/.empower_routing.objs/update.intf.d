lib/routing/update.mli: Domain Multigraph Paths
