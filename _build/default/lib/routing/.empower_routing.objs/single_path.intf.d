lib/routing/single_path.mli: Domain Multigraph Paths
