lib/routing/metrics.mli: Domain Multigraph Paths
