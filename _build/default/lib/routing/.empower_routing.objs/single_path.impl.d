lib/routing/single_path.ml: Dijkstra Update
