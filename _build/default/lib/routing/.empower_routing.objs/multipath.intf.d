lib/routing/multipath.mli: Domain Multigraph Paths
