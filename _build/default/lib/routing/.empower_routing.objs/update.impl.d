lib/routing/update.ml: Array Domain Float Hashtbl List Multigraph Paths
