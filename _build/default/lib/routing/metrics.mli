(** Alternative single-path link metrics (the paper's footnote 7).

    Besides its own [W(l) = d_l] + CSC metric, the authors implemented
    the classic multi-channel mesh metrics and found they all gave
    worse routes in hybrid networks:

    - {b ETT} [7] (expected transmission time): [d_l] per link, no
      switching cost — pure capacity, ignores intra-path interference;
    - {b IRU} [44] (interference-aware resource usage): [d_l]
      multiplied by the number of links the transmission interferes
      with — accounts for inter-flow interference that EMPoWER leaves
      to the congestion controller;
    - {b CATT} [12] (contention-aware transmission time): [d_l] summed
      over the link's contention neighborhood, weighing how much
      airtime a transmission really claims.

    Each metric yields a weighting usable by a generic weighted
    Dijkstra; {!route} runs it. The {!Ablations}-style comparison of
    achieved throughput across metrics lives in the experiments
    library. *)

type t =
  | Empower_csc  (** the paper's metric: d_l + channel-switching cost *)
  | Optimal_csc  (** the tech report's per-path optimal CSC: w_ns = 0,
                     w_s = -min(d_in, d_out) — not isotone (negative,
                     per-path weights), so it cannot drive Dijkstra;
                     we rerank Yen candidates by it instead *)
  | Ett          (** d_l, no CSC *)
  | Iru          (** d_l x |I_l| *)
  | Catt         (** sum of d_l' over l' in I_l *)

val all : t list
(** All five, EMPoWER's first. *)

val name : t -> string
(** ["EMPoWER"], ["optimal-CSC"], ["ETT"], ["IRU"], ["CATT"]. *)

val link_weight : t -> Multigraph.t -> Domain.t -> int -> float
(** The metric's weight for one link ([infinity] on unusable links).
    For [Empower_csc] and [Optimal_csc] this is just [d_l]; their
    switching costs are charged at nodes, not links. *)

val optimal_csc_cost : Multigraph.t -> Paths.t -> float
(** A path's weight under the tech report's optimal CSC:
    [Σ d_l - Σ_{switching nodes} min(d_in, d_out)]. *)

val route :
  t -> Multigraph.t -> Domain.t -> src:int -> dst:int -> (Paths.t * float) option
(** Best single path under the metric (CSC active only for
    [Empower_csc]). *)
