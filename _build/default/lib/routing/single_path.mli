(** The single-path procedure (Section 3.1).

    A thin, intention-revealing wrapper over the CSC-aware Dijkstra:
    link weight [W(l) = d_l] (ETT-equivalent) plus the channel-
    switching cost, computed on the virtual interface graph. Not
    always the highest-throughput route — the multipath procedure
    compensates by considering the n shortest candidates. *)

val route :
  ?csc:bool -> Multigraph.t -> src:int -> dst:int -> (Paths.t * float) option
(** Shortest usable route and its metric weight, or [None] when
    disconnected. [?csc] defaults to [true]; the paper sets the CSC
    to zero in WiFi-only scenarios (there is nothing to alternate),
    which callers express with [~csc:false]. *)

val route_rate :
  ?csc:bool -> Multigraph.t -> Domain.t -> src:int -> dst:int -> (Paths.t * float) option
(** Same route, paired with its achievable rate [R(P)] instead of the
    metric weight. *)
