type t =
  | Empower_csc
  | Optimal_csc
  | Ett
  | Iru
  | Catt

let all = [ Empower_csc; Optimal_csc; Ett; Iru; Catt ]

let name = function
  | Empower_csc -> "EMPoWER"
  | Optimal_csc -> "optimal-CSC"
  | Ett -> "ETT"
  | Iru -> "IRU"
  | Catt -> "CATT"

let link_weight t g dom l =
  let d = Multigraph.d g l in
  if not (Float.is_finite d) then infinity
  else begin
    match t with
    | Empower_csc | Optimal_csc | Ett -> d
    | Iru -> d *. float_of_int (List.length (Domain.domain dom l))
    | Catt ->
      List.fold_left
        (fun acc l' ->
          if Multigraph.usable g l' then acc +. Multigraph.d g l' else acc)
        0.0 (Domain.domain dom l)
  end

let optimal_csc_cost g path =
  let rec go prev_link links acc =
    match links with
    | [] -> acc
    | l :: rest ->
      if not (Multigraph.usable g l) then infinity
      else begin
        let d = Multigraph.d g l in
        let switch_reward =
          match prev_link with
          | Some p
            when (Multigraph.link g p).Multigraph.tech
                 <> (Multigraph.link g l).Multigraph.tech ->
            (* The optimal per-path CSC rewards alternation at the
               switching node by min of the two hop weights. *)
            -.Float.min (Multigraph.d g p) d
          | Some _ | None -> 0.0
        in
        go (Some l) rest (acc +. d +. switch_reward)
      end
  in
  go None path.Paths.links 0.0

let route t g dom ~src ~dst =
  match t with
  | Empower_csc -> Dijkstra.shortest_path ~csc:true g ~src ~dst
  | Optimal_csc -> (
    (* Negative, per-path switching weights break Dijkstra's
       assumptions (no isotonicity), so gather a candidate set with
       Yen under the standard CSC and rerank exactly. *)
    match Yen.k_shortest ~csc:true g ~src ~dst ~k:8 with
    | [] -> None
    | candidates ->
      let best =
        List.fold_left
          (fun acc (p, _) ->
            let c = optimal_csc_cost g p in
            match acc with
            | Some (_, cbest) when cbest <= c -> acc
            | _ -> Some (p, c))
          None candidates
      in
      best)
  | Ett | Iru | Catt -> (
    (* Reuse the CSC-free Dijkstra by encoding the metric as a
       capacity view: Dijkstra weighs links by 1/capacity, so a view
       with capacity 1/w makes it minimize the metric. *)
    let caps =
      Array.init (Multigraph.num_links g) (fun l ->
          let w = link_weight t g dom l in
          if Float.is_finite w && w > 0.0 then 1.0 /. w else 0.0)
    in
    let reweighted = Multigraph.with_capacities g caps in
    match Dijkstra.shortest_path ~csc:false reweighted ~src ~dst with
    | None -> None
    | Some (p, cost) -> Some (Paths.of_links g p.Paths.links, cost))
