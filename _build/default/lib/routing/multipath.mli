(** The multipath-routing protocol (Section 3.2).

    Builds the exploration tree T: the root is the initial multigraph;
    each tree vertex [G] is expanded with the (up to) [n] shortest
    single-path-procedure routes of [n-shortest(G)], each edge [P]
    leading to the child [update(P, G)] and carrying weight [R(P)].
    The procedure returns the branch [B(G_L)] of maximum total
    capacity [Σ_{P ∈ B} R(P)] — the combination of paths that yields
    the highest total throughput when used simultaneously, interference
    included. A link can appear in several returned paths, and the
    number of returned paths is topology-driven: extra paths are kept
    only when they add capacity.

    Defaults follow the paper: [n = 5]. On the paper's networks,
    shared-medium updates zero whole collision domains and trees stay
    shallow (depth <= 3 observed); topologies with more localized
    interference can branch much deeper, so the construction is
    bounded by a branch-depth cap ([max_depth], default 6 — the
    mitigation Section 3.2 itself suggests), a total vertex budget
    ([max_vertices], default 2000), and by ignoring candidate paths
    with [R(P) < min_rate] (default 0.1 Mbps). The bounds only trim
    combinations of 7+ simultaneous paths, whose residual capacities
    are negligible. *)

type combination = {
  paths : (Paths.t * float) list;
      (** the chosen routes with the rate [R(P)] each contributes,
          in tree order (first = selected in the original graph) *)
  total_rate : float;  (** Σ R(P), the branch capacity C_B *)
  tree_depth : int;    (** depth of the winning leaf *)
  tree_vertices : int; (** number of explored tree vertices (ablation metric) *)
}

val find :
  ?n:int ->
  ?csc:bool ->
  ?max_depth:int ->
  ?min_rate:float ->
  ?max_vertices:int ->
  Multigraph.t ->
  Domain.t ->
  src:int ->
  dst:int ->
  combination
(** Run the full procedure. An unreachable destination yields the
    empty combination ([paths = []], [total_rate = 0]). Requires
    [src <> dst] and [n >= 1]. *)

val routes : combination -> Paths.t list
(** Just the routes, in order. *)
