let route ?(csc = true) g ~src ~dst = Dijkstra.shortest_path ~csc g ~src ~dst

let route_rate ?(csc = true) g dom ~src ~dst =
  match route ~csc g ~src ~dst with
  | None -> None
  | Some (p, _) -> Some (p, Update.path_rate g dom p)
