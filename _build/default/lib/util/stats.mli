(** Descriptive statistics and empirical distributions.

    The evaluation section of the paper reports empirical CDFs of
    throughput and throughput ratios; this module provides the
    summaries (mean, standard deviation, percentiles) and the
    {!Ecdf} type used by every figure reproduction. *)

val mean : float list -> float
(** Arithmetic mean; 0 on the empty list. *)

val mean_arr : float array -> float
(** Arithmetic mean of an array; 0 on the empty array. *)

val stddev : float list -> float
(** Population standard deviation; 0 on lists shorter than 2. *)

val variance : float list -> float
(** Population variance; 0 on lists shorter than 2. *)

val minimum : float list -> float
(** Smallest element. Raises [Invalid_argument] on the empty list. *)

val maximum : float list -> float
(** Largest element. Raises [Invalid_argument] on the empty list. *)

val percentile : float list -> float -> float
(** [percentile xs p] with [p] in [0,100], linear interpolation between
    order statistics. Raises [Invalid_argument] on the empty list. *)

val median : float list -> float
(** 50th percentile. *)

module Ecdf : sig
  type t
  (** Empirical cumulative distribution function of a finite sample. *)

  val of_list : float list -> t
  (** Build from a sample. Raises [Invalid_argument] on the empty list. *)

  val eval : t -> float -> float
  (** [eval t x] is the fraction of sample points [<= x]. *)

  val inverse : t -> float -> float
  (** [inverse t q] with [q] in [0,1]: the smallest sample value [v]
      with [eval t v >= q]. *)

  val support : t -> float * float
  (** Smallest and largest sample values. *)

  val size : t -> int
  (** Number of sample points. *)

  val points : t -> (float * float) list
  (** The staircase as sorted [(value, cumulative fraction)] pairs,
      one pair per sample point. *)

  val sample_at : t -> float list -> (float * float) list
  (** [sample_at t xs] evaluates the CDF at each of [xs]; useful for
      printing fixed-grid figure series. *)
end

val fraction_below : float list -> float -> float
(** [fraction_below xs x] is the fraction of values strictly below [x];
    0 on the empty list. *)

val fraction_at_least : float list -> float -> float
(** Fraction of values [>= x]; 0 on the empty list. *)
