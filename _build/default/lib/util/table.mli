(** Plain-text rendering of figure series and tables.

    Every experiment in [empower_experiments] ends by printing the
    rows/series the paper reports; this module holds the shared
    formatting: aligned tables, CDF grids and coarse ASCII curves. *)

val print_table : header:string list -> rows:string list list -> unit
(** Print an aligned table with a header row and a separator line.
    Rows shorter than the header are padded with empty cells. *)

val print_cdf_grid :
  title:string -> xlabel:string -> grid:float list ->
  series:(string * Stats.Ecdf.t) list -> unit
(** Print one column per series: for each grid value x, the fraction of
    samples [<= x]. This is the textual equivalent of the paper's CDF
    figures. *)

val log_grid : lo:float -> hi:float -> n:int -> float list
(** [n] points geometrically spaced between [lo] and [hi] (inclusive);
    used for the paper's log-scale ratio CDFs. Requires positive
    bounds and [n >= 2]. *)

val linear_grid : lo:float -> hi:float -> n:int -> float list
(** [n] points linearly spaced between [lo] and [hi] (inclusive).
    Requires [n >= 2]. *)

val fmt_float : float -> string
(** Compact float formatting used in table cells ("12.3", "0.07"). *)

val print_series :
  title:string -> xlabel:string -> ylabel:string ->
  (float * float list) list -> names:string list -> unit
(** Print a time/parameter series with one named column per trace. *)
