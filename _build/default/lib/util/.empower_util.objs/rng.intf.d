lib/util/rng.mli:
