lib/util/table.ml: Float List Printf Stats String
