lib/util/stats.mli:
