lib/util/pqueue.mli:
