let fmt_float v =
  if Float.is_integer v && Float.abs v < 1e9 then Printf.sprintf "%.0f" v
  else if Float.abs v >= 100.0 then Printf.sprintf "%.0f" v
  else if Float.abs v >= 1.0 then Printf.sprintf "%.2f" v
  else Printf.sprintf "%.3f" v

let pad width s =
  let n = String.length s in
  if n >= width then s else s ^ String.make (width - n) ' '

let print_table ~header ~rows =
  let ncols = List.length header in
  let normalize row =
    let len = List.length row in
    if len >= ncols then row else row @ List.init (ncols - len) (fun _ -> "")
  in
  let rows = List.map normalize rows in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun acc row -> max acc (String.length (List.nth row i)))
          (String.length h) rows)
      header
  in
  let print_row cells =
    let padded = List.map2 (fun w c -> pad w c) widths cells in
    print_endline (String.concat "  " padded)
  in
  print_row header;
  print_endline
    (String.concat "  " (List.map (fun w -> String.make w '-') widths));
  List.iter print_row rows

let linear_grid ~lo ~hi ~n =
  assert (n >= 2);
  List.init n (fun i ->
      lo +. ((hi -. lo) *. float_of_int i /. float_of_int (n - 1)))

let log_grid ~lo ~hi ~n =
  assert (n >= 2 && lo > 0.0 && hi > 0.0);
  let llo = log lo and lhi = log hi in
  List.init n (fun i ->
      exp (llo +. ((lhi -. llo) *. float_of_int i /. float_of_int (n - 1))))

let print_cdf_grid ~title ~xlabel ~grid ~series =
  print_endline title;
  let header = xlabel :: List.map fst series in
  let rows =
    List.map
      (fun x ->
        fmt_float x
        :: List.map (fun (_, ecdf) -> fmt_float (Stats.Ecdf.eval ecdf x)) series)
      grid
  in
  print_table ~header ~rows

let print_series ~title ~xlabel ~ylabel points ~names =
  print_endline (Printf.sprintf "%s  (%s)" title ylabel);
  let header = xlabel :: names in
  let rows =
    List.map
      (fun (x, ys) -> fmt_float x :: List.map fmt_float ys)
      points
  in
  print_table ~header ~rows
