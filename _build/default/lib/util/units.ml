let mbps_to_bytes_per_s mbps = mbps *. 1e6 /. 8.0

let bytes_per_s_to_mbps bps = bps *. 8.0 /. 1e6

let bytes_to_mbit bytes = bytes *. 8.0 /. 1e6

let mbit_to_bytes mbit = mbit *. 1e6 /. 8.0

let tx_time ~capacity_mbps ~bytes =
  assert (capacity_mbps > 0.0);
  float_of_int bytes /. mbps_to_bytes_per_s capacity_mbps

let kib n = n * 1024

let mib n = n * 1024 * 1024

let pp_mbps ppf v = Format.fprintf ppf "%.1f Mbps" v

let pp_seconds ppf v = Format.fprintf ppf "%.2f s" v
