(** Mutable binary min-heap keyed by float priority.

    Used by Dijkstra/Yen in [empower_graph] and by the event queue of
    the discrete-event simulator, where the priority is an event
    timestamp. Ties are broken by insertion order (FIFO), which keeps
    simulations deterministic. *)

type 'a t
(** A min-heap of ['a] elements with float priorities. *)

val create : unit -> 'a t
(** Fresh empty heap. *)

val is_empty : 'a t -> bool
(** [true] iff the heap holds no element. *)

val size : 'a t -> int
(** Number of queued elements. *)

val push : 'a t -> float -> 'a -> unit
(** [push t prio x] inserts [x] with priority [prio]. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the minimum-priority element, FIFO among ties. *)

val peek : 'a t -> (float * 'a) option
(** Return the minimum-priority element without removing it. *)

val clear : 'a t -> unit
(** Drop all elements. *)
