(** Unit conventions and conversions.

    Throughout the repository, capacities and rates are in Mbit/s
    (as in the paper's figures), time in seconds, distances in
    meters, data sizes in bytes. This module centralizes the few
    conversions the simulator needs. *)

val mbps_to_bytes_per_s : float -> float
(** Megabits per second to bytes per second. *)

val bytes_per_s_to_mbps : float -> float
(** Bytes per second to megabits per second. *)

val bytes_to_mbit : float -> float
(** Bytes to megabits. *)

val mbit_to_bytes : float -> float
(** Megabits to bytes. *)

val tx_time : capacity_mbps:float -> bytes:int -> float
(** Seconds needed to transmit [bytes] on a link of the given
    capacity. Requires a strictly positive capacity. *)

val kib : int -> int
(** [kib n] is n KiB in bytes. *)

val mib : int -> int
(** [mib n] is n MiB in bytes. *)

val pp_mbps : Format.formatter -> float -> unit
(** Print a rate as ["12.3 Mbps"]. *)

val pp_seconds : Format.formatter -> float -> unit
(** Print a duration as ["3.25 s"]. *)
