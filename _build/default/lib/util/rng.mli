(** Deterministic, splittable pseudo-random number generator.

    All randomness in the repository flows through this module so that
    every simulation, topology draw and experiment is reproducible from
    a single integer seed. The core generator is SplitMix64, which is
    fast, has a 64-bit state, and supports cheap splitting: [split t]
    yields an independent stream, which lets parallel experiment runs
    share a master seed without correlation. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator from an integer seed. Equal
    seeds produce equal streams. *)

val split : t -> t
(** [split t] derives a new, statistically independent generator and
    advances [t]. Used to give each run of a multi-run experiment its
    own stream. *)

val copy : t -> t
(** [copy t] duplicates the current state without advancing [t]. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float
(** [float t] draws uniformly in [0, 1). *)

val uniform : t -> float -> float -> float
(** [uniform t lo hi] draws uniformly in [lo, hi). Requires [lo <= hi]. *)

val int : t -> int -> int
(** [int t n] draws uniformly in [0, n-1]. Requires [n > 0]. *)

val bool : t -> bool
(** Fair coin flip. *)

val gaussian : t -> mean:float -> std:float -> float
(** Normal variate via the Box–Muller transform. *)

val exponential : t -> rate:float -> float
(** Exponential variate with the given rate (mean [1 /. rate]).
    Requires [rate > 0]. *)

val pick : t -> 'a array -> 'a
(** Uniform draw from a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val sample_without_replacement : t -> int -> int -> int list
(** [sample_without_replacement t k n] draws [k] distinct integers from
    [0..n-1]. Requires [k <= n]. *)
