let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let mean_arr arr =
  if Array.length arr = 0 then 0.0
  else Array.fold_left ( +. ) 0.0 arr /. float_of_int (Array.length arr)

let variance xs =
  match xs with
  | [] | [ _ ] -> 0.0
  | _ ->
    let m = mean xs in
    let acc = List.fold_left (fun a x -> a +. ((x -. m) *. (x -. m))) 0.0 xs in
    acc /. float_of_int (List.length xs)

let stddev xs = sqrt (variance xs)

let minimum = function
  | [] -> invalid_arg "Stats.minimum: empty list"
  | x :: xs -> List.fold_left min x xs

let maximum = function
  | [] -> invalid_arg "Stats.maximum: empty list"
  | x :: xs -> List.fold_left max x xs

let percentile xs p =
  match xs with
  | [] -> invalid_arg "Stats.percentile: empty list"
  | _ ->
    let arr = Array.of_list xs in
    Array.sort compare arr;
    let n = Array.length arr in
    if n = 1 then arr.(0)
    else begin
      let p = Float.max 0.0 (Float.min 100.0 p) in
      let rank = p /. 100.0 *. float_of_int (n - 1) in
      let lo = int_of_float (floor rank) in
      let hi = int_of_float (ceil rank) in
      if lo = hi then arr.(lo)
      else begin
        let frac = rank -. float_of_int lo in
        (arr.(lo) *. (1.0 -. frac)) +. (arr.(hi) *. frac)
      end
    end

let median xs = percentile xs 50.0

module Ecdf = struct
  type t = { sorted : float array }

  let of_list xs =
    match xs with
    | [] -> invalid_arg "Ecdf.of_list: empty sample"
    | _ ->
      let sorted = Array.of_list xs in
      Array.sort compare sorted;
      { sorted }

  let size t = Array.length t.sorted

  (* Number of sample points <= x, by binary search for the upper bound. *)
  let count_le t x =
    let arr = t.sorted in
    let n = Array.length arr in
    let rec go lo hi =
      if lo >= hi then lo
      else
        let mid = (lo + hi) / 2 in
        if arr.(mid) <= x then go (mid + 1) hi else go lo mid
    in
    go 0 n

  let eval t x = float_of_int (count_le t x) /. float_of_int (size t)

  let inverse t q =
    let n = size t in
    let q = Float.max 0.0 (Float.min 1.0 q) in
    let k = int_of_float (ceil (q *. float_of_int n)) in
    let k = if k <= 0 then 1 else if k > n then n else k in
    t.sorted.(k - 1)

  let support t = (t.sorted.(0), t.sorted.(size t - 1))

  let points t =
    let n = size t in
    List.init n (fun i -> (t.sorted.(i), float_of_int (i + 1) /. float_of_int n))

  let sample_at t xs = List.map (fun x -> (x, eval t x)) xs
end

let fraction_below xs x =
  match xs with
  | [] -> 0.0
  | _ ->
    let below = List.length (List.filter (fun v -> v < x) xs) in
    float_of_int below /. float_of_int (List.length xs)

let fraction_at_least xs x =
  match xs with
  | [] -> 0.0
  | _ ->
    let ge = List.length (List.filter (fun v -> v >= x) xs) in
    float_of_int ge /. float_of_int (List.length xs)
