type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* SplitMix64 step: advance the state by the golden gamma and scramble. *)
let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t =
  let s = int64 t in
  { state = s }

let float t =
  (* Use the top 53 bits for a uniform double in [0,1). *)
  let bits = Int64.shift_right_logical (int64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let uniform t lo hi =
  assert (lo <= hi);
  lo +. ((hi -. lo) *. float t)

let int t n =
  assert (n > 0);
  (* Keep 62 bits so the value stays non-negative in OCaml's 63-bit
     native int; modulo bias is negligible for our n << 2^62. *)
  let v = Int64.to_int (Int64.shift_right_logical (int64 t) 2) in
  v mod n

let bool t = Int64.logand (int64 t) 1L = 1L

let gaussian t ~mean ~std =
  let rec draw () =
    let u1 = float t in
    if u1 <= 1e-300 then draw ()
    else
      let u2 = float t in
      mean +. (std *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))
  in
  draw ()

let exponential t ~rate =
  assert (rate > 0.0);
  let rec draw () =
    let u = float t in
    if u <= 1e-300 then draw () else -.log u /. rate
  in
  draw ()

let pick t arr =
  assert (Array.length arr > 0);
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let sample_without_replacement t k n =
  assert (k <= n);
  let arr = Array.init n (fun i -> i) in
  shuffle t arr;
  Array.to_list (Array.sub arr 0 k)
