type t =
  | Saturated
  | File of { bytes : int }
  | Poisson_files of { bytes : int; mean_gap_s : float; count : int }

let describe = function
  | Saturated -> "saturated UDP"
  | File { bytes } -> Printf.sprintf "file %.1f MB" (float_of_int bytes /. 1e6)
  | Poisson_files { bytes; mean_gap_s; count } ->
    Printf.sprintf "%d x %.1f MB files (Poisson, mean gap %.0f s)" count
      (float_of_int bytes /. 1e6)
      mean_gap_s

let total_bytes = function
  | Saturated -> None
  | File { bytes } -> Some bytes
  | Poisson_files { bytes; count; _ } -> Some (bytes * count)

let arrival_times rng = function
  | Saturated | File _ -> [ 0.0 ]
  | Poisson_files { mean_gap_s; count; _ } ->
    let rec go t n acc =
      if n = 0 then List.rev acc
      else begin
        let gap = Rng.exponential rng ~rate:(1.0 /. mean_gap_s) in
        let t' = t +. gap in
        go t' (n - 1) (t' :: acc)
      end
    in
    go 0.0 count []
