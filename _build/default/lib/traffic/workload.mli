(** Traffic workloads offered to a flow (Sections 6.2 and 6.3).

    - [Saturated] — iperf-style saturated UDP: the source always has
      data and injects at whatever rate the congestion controller (or
      the fixed offered rate, without CC) allows.
    - [File] — a single transfer of the given size; the experiment
      records its completion time (Table 1's Tiny/Short/Long are
      100 kB, 5 MB and 2 GB files).
    - [Poisson_files] — a sequence of equal-size files whose start
      times follow a Poisson process (Table 1's Conc experiment:
      five 5 MB files, 60 s mean inter-arrival); a file also cannot
      start before the previous one finished. *)

type t =
  | Saturated
  | File of { bytes : int }
  | Poisson_files of { bytes : int; mean_gap_s : float; count : int }

val describe : t -> string
(** Human-readable summary, e.g. ["file 5.0 MB"]. *)

val total_bytes : t -> int option
(** Total volume, [None] for [Saturated]. *)

val arrival_times : Rng.t -> t -> float list
(** Workload start times: [0.] for [Saturated] and [File];
    Poisson draws (cumulative, starting at 0) for [Poisson_files]. *)
