type t = {
  g : Multigraph.t;
  dom : Domain.t;
  d : float array;
  routes : Paths.t array;
  flow_of : int array;
  flow_routes : int list array;
  utility : Utility.t;
  delta : float;
  external_airtime : float array;
}

let make ?(delta = 0.0) ?d ?external_airtime ?(utility = Utility.proportional_fair)
    g dom ~flows =
  if delta < 0.0 || delta >= 1.0 then invalid_arg "Problem.make: delta outside [0,1)";
  let n_links = Multigraph.num_links g in
  let d =
    match d with
    | Some d ->
      if Array.length d <> n_links then invalid_arg "Problem.make: d length mismatch";
      d
    | None -> Array.init n_links (fun l -> Multigraph.d g l)
  in
  let external_airtime =
    match external_airtime with
    | Some a ->
      if Array.length a <> n_links then
        invalid_arg "Problem.make: external_airtime length mismatch";
      a
    | None -> Array.make n_links 0.0
  in
  let routes = Array.of_list (List.concat flows) in
  Array.iter
    (fun p ->
      List.iter
        (fun l ->
          if not (Float.is_finite d.(l)) then
            invalid_arg "Problem.make: route uses an unusable link")
        p.Paths.links)
    routes;
  let n_flows = List.length flows in
  let flow_of = Array.make (Array.length routes) 0 in
  let flow_routes = Array.make n_flows [] in
  let idx = ref 0 in
  List.iteri
    (fun f routes_f ->
      List.iter
        (fun _ ->
          flow_of.(!idx) <- f;
          flow_routes.(f) <- !idx :: flow_routes.(f);
          incr idx)
        routes_f)
    flows;
  Array.iteri (fun f rs -> flow_routes.(f) <- List.rev rs) flow_routes;
  { g; dom; d; routes; flow_of; flow_routes; utility; delta; external_airtime }

let n_routes t = Array.length t.routes

let n_flows t = Array.length t.flow_routes

let flow_rate t x f =
  List.fold_left (fun acc r -> acc +. x.(r)) 0.0 t.flow_routes.(f)

let flow_rates t x = Array.init (n_flows t) (flow_rate t x)

let airtime_demand t x l =
  let traffic = ref 0.0 in
  Array.iteri
    (fun r p -> if Paths.mem_link p l then traffic := !traffic +. x.(r))
    t.routes;
  (t.d.(l) *. !traffic) +. t.external_airtime.(l)

let feasible ?(slack = 1e-9) t x =
  let n_links = Multigraph.num_links t.g in
  let demand = Array.init n_links (airtime_demand t x) in
  let ok = ref true in
  for l = 0 to n_links - 1 do
    let y = List.fold_left (fun acc l' -> acc +. demand.(l')) 0.0 (Domain.domain t.dom l) in
    if y > 1.0 -. t.delta +. slack then ok := false
  done;
  !ok
