type t = {
  mutable alpha : float;
  adaptive : bool;
  mutable prev : float option;        (* last rate sample *)
  mutable prev_diff : float;          (* last non-zero increment *)
  mutable last_amplitude : float;     (* amplitude of the last swing *)
  mutable oscillations : int;         (* consecutive non-decreasing swings *)
}

let initial ~single_path ~longest_route_hops =
  let base = 0.02 in
  if longest_route_hops <= 1 then base *. 4.0
  else if single_path || longest_route_hops = 2 then base *. 2.0
  else base

let create ~single_path ~longest_route_hops =
  {
    alpha = initial ~single_path ~longest_route_hops;
    adaptive = true;
    prev = None;
    prev_diff = 0.0;
    last_amplitude = 0.0;
    oscillations = 0;
  }

let fixed alpha =
  {
    alpha;
    adaptive = false;
    prev = None;
    prev_diff = 0.0;
    last_amplitude = 0.0;
    oscillations = 0;
  }

let current t = t.alpha

let observe t rate =
  if t.adaptive then begin
    match t.prev with
    | None -> t.prev <- Some rate
    | Some prev ->
      let diff = rate -. prev in
      t.prev <- Some rate;
      if Float.abs diff > 1e-9 then begin
        let sign_flip = t.prev_diff *. diff < 0.0 in
        if sign_flip then begin
          let amplitude = Float.abs diff in
          if amplitude >= t.last_amplitude -. 1e-12 then
            t.oscillations <- t.oscillations + 1
          else t.oscillations <- 0;
          t.last_amplitude <- amplitude;
          if t.oscillations >= 6 then begin
            t.alpha <- t.alpha /. 2.0;
            t.oscillations <- 0;
            t.last_amplitude <- 0.0
          end
        end;
        t.prev_diff <- diff
      end
  end
