(** Controller run results and convergence measurement.

    One controller "slot" is the interval between two acknowledgements
    (100 ms on the testbed). A run records the per-slot flow-rate
    trace so experiments can measure convergence the way the paper
    does: the steady state is reached at the first slot from which
    every flow's rate stays within 1% of its final value. *)

type t = {
  rates : float array;        (** final per-route rates x_r (Mbit/s) *)
  flow_rates : float array;   (** final per-flow rates x_f *)
  slots : int;                (** slots executed *)
  trace : float array array;  (** [trace.(t)] = flow rates after slot t *)
}

val convergence_slot : ?tol:float -> t -> int option
(** First slot from which every flow rate remains within [tol]
    (default 0.01, i.e. 1%) relative error of its final value — with
    an absolute floor of 0.01 Mbps so zero-rate flows compare
    sensibly. [None] if the trace never settles (the run was too
    short). *)

val final_utility : Utility.t -> t -> float
(** [Σ_f U(x_f)] at the final allocation. *)
