(** The single-path congestion controller (Section 4.2).

    One route per flow. Each slot applies (7)–(10):
    [y_l] from measured airtime demands, the dual update
    [γ_l ← [γ_l + α (y_l - (1-δ))]+], route costs [q_r], and the
    primal step [x_r ← U'^-1(q_r)]. With a diminishing step size this
    converges to the optimum of (4)–(6); EMPoWER uses a fixed (or
    heuristically adapted) α to keep tracking network changes, which
    converges to a small neighborhood of the optimum. *)

val solve :
  ?alpha:Alpha.t ->
  ?slots:int ->
  ?x_cap:float ->
  Problem.t ->
  Cc_result.t
(** Run the controller for [slots] iterations (default 2000) from
    x = 0, γ = 0. [?alpha] defaults to the fixed paper value 0.02.
    [x_cap] (default 1000 Mbps) bounds the primal iterate — U'^-1
    explodes while prices are still zero in the first slots.
    Requires every flow of the problem to have exactly one route. *)
