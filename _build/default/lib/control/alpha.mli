(** The paper's step-size heuristic (Section 6.1).

    The controller uses a fixed step size α to keep adapting to
    network changes; the heuristic picks its magnitude from route
    length (short routes tolerate a larger α) and backs off when the
    rate oscillates:

    - α starts at 0.02;
    - x2 when the flow is single-path or its longest route has two
      hops; x4 when the longest route has one hop;
    - whenever 6 or more oscillations with non-decreasing amplitude
      are observed on the flow rate, α is halved. *)

type t
(** Mutable per-controller step-size state. *)

val initial : single_path:bool -> longest_route_hops:int -> float
(** The initial α from the route-shape rule above. *)

val create : single_path:bool -> longest_route_hops:int -> t
(** Fresh state at {!initial}. *)

val current : t -> float
(** The α to use this slot. *)

val observe : t -> float -> unit
(** Feed the current aggregate rate (one sample per slot); may halve
    α when the oscillation rule triggers. *)

val fixed : float -> t
(** A state that never adapts (for ablations and the simulation
    experiments, which use a constant α). *)
