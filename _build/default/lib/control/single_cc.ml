let solve ?alpha ?(slots = 2000) ?(x_cap = 1000.0) (problem : Problem.t) =
  Array.iter
    (fun routes ->
      if List.length routes > 1 then
        invalid_arg "Single_cc.solve: a flow has several routes")
    problem.Problem.flow_routes;
  let alpha = match alpha with Some a -> a | None -> Alpha.fixed 0.02 in
  let n_routes = Problem.n_routes problem in
  let price = Price.create problem in
  let x = Array.make n_routes 0.0 in
  let trace = Array.make slots [||] in
  let u'_inv = problem.Problem.utility.Utility.u'_inv in
  for t = 0 to slots - 1 do
    let a = Alpha.current alpha in
    let y = Price.airtimes price ~x in
    Price.step_gamma price ~y ~alpha:a;
    let q = Price.route_costs price in
    for r = 0 to n_routes - 1 do
      x.(r) <- Float.min x_cap (u'_inv q.(r))
    done;
    let flow_rates = Problem.flow_rates problem x in
    trace.(t) <- flow_rates;
    Alpha.observe alpha (Array.fold_left ( +. ) 0.0 flow_rates)
  done;
  {
    Cc_result.rates = x;
    flow_rates = Problem.flow_rates problem x;
    slots;
    trace;
  }
