(** The congestion-control problem instance (Section 4.1).

    Routes are preselected (by [empower_routing]); the controller only
    decides the per-route rates x_r. A problem bundles the network
    view, the interference domains, the airtime costs [d_l] the
    controller believes (normally from capacity *estimates*, not
    ground truth), the route set grouped into flows, the utility, the
    constraint margin δ of (3), and any external (non-EMPoWER)
    airtime the nodes measure on each link's medium. *)

type t = {
  g : Multigraph.t;
  dom : Domain.t;
  d : float array;  (** airtime per Mbit on each link (1/capacity) *)
  routes : Paths.t array;  (** all routes, across flows *)
  flow_of : int array;     (** [flow_of.(r)] is the flow owning route [r] *)
  flow_routes : int list array;  (** route ids per flow *)
  utility : Utility.t;
  delta : float;
  external_airtime : float array;  (** per link, in [0,1) *)
}

val make :
  ?delta:float ->
  ?d:float array ->
  ?external_airtime:float array ->
  ?utility:Utility.t ->
  Multigraph.t ->
  Domain.t ->
  flows:Paths.t list list ->
  t
(** [make g dom ~flows] with [flows] the per-flow route lists.
    Defaults: [delta = 0] (the paper's simulations; testbed UDP runs
    use 0.05 and TCP runs 0.3), [d] from the graph's capacities,
    no external airtime, proportional-fair utility. Flows with no
    route are allowed (they simply get rate 0). Raises
    [Invalid_argument] if [delta] is outside [0, 1) or any route is
    unusable (a hop with zero capacity and no [?d] override). *)

val n_routes : t -> int
(** Total number of routes. *)

val n_flows : t -> int
(** Number of flows. *)

val flow_rate : t -> float array -> int -> float
(** [flow_rate t x f] = Σ of [x_r] over the routes of flow [f]. *)

val flow_rates : t -> float array -> float array
(** All flow rates. *)

val airtime_demand : t -> float array -> int -> float
(** The airtime demand [d_l · Σ_{r: l ∈ r} x_r] of link [l] under
    route rates [x], plus the link's external airtime. *)

val feasible : ?slack:float -> t -> float array -> bool
(** Whether rates [x] satisfy the conservative interference
    constraint (3): [Σ_{l' ∈ I_l} demand(l') <= 1 - delta + slack]
    for every link [l] (default [slack = 1e-9]). *)
