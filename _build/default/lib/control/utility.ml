type t = {
  name : string;
  u : float -> float;
  u' : float -> float;
  u'_inv : float -> float;
}

let proportional_fair =
  {
    name = "log(1+x)";
    u = (fun x -> log (1.0 +. x));
    u' = (fun x -> 1.0 /. (1.0 +. x));
    u'_inv = (fun q -> if q <= 0.0 then infinity else Float.max 0.0 ((1.0 /. q) -. 1.0));
  }

let weighted_proportional_fair ~weight =
  assert (weight > 0.0);
  {
    name = Printf.sprintf "%.2f*log(1+x)" weight;
    u = (fun x -> weight *. log (1.0 +. x));
    u' = (fun x -> weight /. (1.0 +. x));
    u'_inv =
      (fun q -> if q <= 0.0 then infinity else Float.max 0.0 ((weight /. q) -. 1.0));
  }

let alpha_fair ~alpha =
  if alpha <= 0.0 then invalid_arg "Utility.alpha_fair: alpha <= 0";
  if Float.abs (alpha -. 1.0) < 1e-9 then proportional_fair
  else
    {
      name = Printf.sprintf "alpha-fair(%.2f)" alpha;
      u = (fun x -> (((1.0 +. x) ** (1.0 -. alpha)) -. 1.0) /. (1.0 -. alpha));
      u' = (fun x -> (1.0 +. x) ** -.alpha);
      u'_inv =
        (fun q ->
          if q <= 0.0 then infinity
          else Float.max 0.0 ((q ** (-1.0 /. alpha)) -. 1.0));
    }

let total t rates = List.fold_left (fun acc x -> acc +. t.u x) 0.0 rates
