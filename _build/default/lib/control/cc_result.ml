type t = {
  rates : float array;
  flow_rates : float array;
  slots : int;
  trace : float array array;
}

let convergence_slot ?(tol = 0.01) t =
  let n_slots = Array.length t.trace in
  if n_slots = 0 then None
  else begin
    let final = t.flow_rates in
    let n_flows = Array.length final in
    let within slot =
      let ok = ref true in
      for f = 0 to n_flows - 1 do
        let err = Float.abs (t.trace.(slot).(f) -. final.(f)) in
        let bound = Float.max (tol *. Float.abs final.(f)) 0.01 in
        if err > bound then ok := false
      done;
      !ok
    in
    (* Scan backward for the last slot that violates the band. *)
    let rec last_violation slot =
      if slot < 0 then None else if not (within slot) then Some slot else last_violation (slot - 1)
    in
    match last_violation (n_slots - 1) with
    | None -> Some 0
    | Some v -> if v + 1 >= n_slots then None else Some (v + 1)
  end

let final_utility u t =
  Array.fold_left (fun acc x -> acc +. u.Utility.u x) 0.0 t.flow_rates
