(** Flow utility functions for network utility maximization.

    The controller maximizes [Σ_f U_f(x_f)] for increasing, strictly
    concave [U_f]. The paper (and this repository's experiments) uses
    proportional fairness [U(x) = log(1 + x)]; alpha-fair utilities
    are provided for ablations. Rates are in Mbit/s. *)

type t = {
  name : string;
  u : float -> float;        (** U(x), defined for x >= 0 *)
  u' : float -> float;       (** U'(x) > 0, strictly decreasing *)
  u'_inv : float -> float;   (** inverse of U' extended with 0 beyond U'(0) *)
}

val proportional_fair : t
(** [U(x) = log(1 + x)]: the paper's throughput/fairness tradeoff.
    [U'(x) = 1/(1+x)], [U'^-1(q) = max 0 (1/q - 1)]. *)

val weighted_proportional_fair : weight:float -> t
(** [U(x) = w log(1 + x)] for [w > 0]. *)

val alpha_fair : alpha:float -> t
(** Mo–Walrand alpha-fair family on [1 + x] (so it is finite at 0):
    [alpha = 1] recovers proportional fairness; larger alpha is more
    fairness-leaning. Requires [alpha > 0]. *)

val total : t -> float list -> float
(** [Σ U(x_f)] over a list of flow rates. *)
