lib/control/cc_result.ml: Array Float Utility
