lib/control/alpha.mli:
