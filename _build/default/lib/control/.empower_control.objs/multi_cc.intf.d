lib/control/multi_cc.mli: Alpha Cc_result Problem
