lib/control/multi_cc.ml: Alpha Array Cc_result Float Price Problem Utility
