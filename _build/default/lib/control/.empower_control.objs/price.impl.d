lib/control/price.ml: Array Domain Float Fun List Multigraph Paths Problem
