lib/control/cc_result.mli: Utility
