lib/control/problem.mli: Domain Multigraph Paths Utility
