lib/control/problem.ml: Array Domain Float List Multigraph Paths Utility
