lib/control/price.mli: Problem
