lib/control/utility.ml: Float List Printf
