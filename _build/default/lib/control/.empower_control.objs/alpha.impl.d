lib/control/alpha.ml: Float
