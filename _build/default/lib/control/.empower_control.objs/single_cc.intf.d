lib/control/single_cc.mli: Alpha Cc_result Problem
