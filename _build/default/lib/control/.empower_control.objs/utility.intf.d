lib/control/utility.mli:
