lib/control/single_cc.ml: Alpha Array Cc_result Float List Price Problem Utility
