(** A minimal IEEE 1905.1 abstraction-layer entity.

    Each node runs an AL identified by an AL MAC address. The AL
    answers topology queries with a device-information TLV (its
    interfaces and their media types) plus one link-metric TLV per
    egress link, and absorbs other devices' responses into a topology
    database from which the hybrid multigraph can be reconstructed —
    the 1905.1-standard path to the same knowledge EMPoWER's own
    LSAs provide ("the IEEE 1905.1 standard ... provides an
    abstraction layer without specifying routing or load-balancing
    algorithms"; EMPoWER supplies those on top). *)

type t

val create : node:int -> techs:Technology.t array -> t
(** The AL of one node. Interface MACs are derived deterministically
    from (node, technology). *)

val node : t -> int

val al_mac : t -> string
(** 6-byte AL MAC. *)

val media_of_tech : Technology.t -> Tlv.media_type
(** 1905.1 media type of a technology (802.11 channel variants,
    IEEE 1901). *)

val topology_response :
  t -> Multigraph.t -> message_id:int -> Cmdu.t
(** The CMDU this AL sends in response to a topology query, given its
    current view of its own links: device information + one
    link-metric TLV per usable egress link. *)

val handle : t -> Cmdu.t -> unit
(** Absorb a received CMDU (topology / link-metric responses and
    notifications). Messages with a lower id than already seen from
    the same AL are ignored; unknown TLVs are skipped. *)

val known_devices : t -> int
(** Number of distinct remote ALs heard from. *)

val graph : t -> n_nodes:int -> Multigraph.t
(** Reconstruct the multigraph from the collected link metrics
    (bidirectional estimates averaged; foreign/garbled MACs are
    ignored). *)

val node_of_mac : string -> (int * int) option
(** Inverse of {!Tlv.mac_of_node}: [(node, tech)] when the MAC is one
    of ours (02:19:05 prefix). *)
