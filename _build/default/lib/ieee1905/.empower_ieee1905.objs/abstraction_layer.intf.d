lib/ieee1905/abstraction_layer.mli: Cmdu Multigraph Technology Tlv
