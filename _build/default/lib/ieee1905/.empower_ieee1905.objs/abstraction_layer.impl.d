lib/ieee1905/abstraction_layer.ml: Array Char Cmdu Hashtbl List Multigraph String Technology Tlv
