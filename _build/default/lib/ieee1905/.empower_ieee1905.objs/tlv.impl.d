lib/ieee1905/tlv.ml: Buffer Bytes Char Float Format List String
