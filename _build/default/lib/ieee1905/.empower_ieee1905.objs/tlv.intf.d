lib/ieee1905/tlv.mli: Format
