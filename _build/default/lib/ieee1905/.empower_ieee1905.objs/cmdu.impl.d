lib/ieee1905/cmdu.ml: Bytes Char Format List Printf Tlv
