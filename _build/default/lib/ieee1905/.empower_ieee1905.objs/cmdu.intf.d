lib/ieee1905/cmdu.mli: Format Tlv
