type message_type =
  | Topology_discovery
  | Topology_notification
  | Topology_query
  | Topology_response
  | Link_metric_query
  | Link_metric_response

type t = {
  message_type : message_type;
  message_id : int;
  fragment : int;
  last_fragment : bool;
  relay : bool;
  tlvs : Tlv.t list;
}

let message_type_code = function
  | Topology_discovery -> 0x0000
  | Topology_notification -> 0x0001
  | Topology_query -> 0x0002
  | Topology_response -> 0x0003
  | Link_metric_query -> 0x0005
  | Link_metric_response -> 0x0006

let message_type_of_code = function
  | 0x0000 -> Topology_discovery
  | 0x0001 -> Topology_notification
  | 0x0002 -> Topology_query
  | 0x0003 -> Topology_response
  | 0x0005 -> Link_metric_query
  | 0x0006 -> Link_metric_response
  | c -> invalid_arg (Printf.sprintf "Cmdu: unknown message type 0x%04x" c)

let make ?(fragment = 0) ?(last_fragment = true) ?(relay = false) message_type
    ~message_id tlvs =
  if message_id < 0 || message_id > 0xFFFF then invalid_arg "Cmdu.make: bad id";
  if fragment < 0 || fragment > 0xFF then invalid_arg "Cmdu.make: bad fragment";
  { message_type; message_id; fragment; last_fragment; relay; tlvs }

let encode t =
  let payload = Tlv.encode_all t.tlvs in
  let b = Bytes.make (8 + Bytes.length payload) '\000' in
  let code = message_type_code t.message_type in
  Bytes.set b 2 (Char.chr ((code lsr 8) land 0xFF));
  Bytes.set b 3 (Char.chr (code land 0xFF));
  Bytes.set b 4 (Char.chr ((t.message_id lsr 8) land 0xFF));
  Bytes.set b 5 (Char.chr (t.message_id land 0xFF));
  Bytes.set b 6 (Char.chr t.fragment);
  let flags =
    (if t.last_fragment then 0x80 else 0x00) lor if t.relay then 0x40 else 0x00
  in
  Bytes.set b 7 (Char.chr flags);
  Bytes.blit payload 0 b 8 (Bytes.length payload);
  b

let decode b =
  if Bytes.length b < 8 then invalid_arg "Cmdu.decode: truncated header";
  if Bytes.get b 0 <> '\000' then invalid_arg "Cmdu.decode: bad version";
  let u16 off = (Char.code (Bytes.get b off) lsl 8) lor Char.code (Bytes.get b (off + 1)) in
  let flags = Char.code (Bytes.get b 7) in
  {
    message_type = message_type_of_code (u16 2);
    message_id = u16 4;
    fragment = Char.code (Bytes.get b 6);
    last_fragment = flags land 0x80 <> 0;
    relay = flags land 0x40 <> 0;
    tlvs = Tlv.decode_all b ~pos:8;
  }

let pp ppf t =
  let name =
    match t.message_type with
    | Topology_discovery -> "topology-discovery"
    | Topology_notification -> "topology-notification"
    | Topology_query -> "topology-query"
    | Topology_response -> "topology-response"
    | Link_metric_query -> "link-metric-query"
    | Link_metric_response -> "link-metric-response"
  in
  Format.fprintf ppf "cmdu[%s#%d frag %d%s: %d tlvs]" name t.message_id t.fragment
    (if t.relay then " relay" else "")
    (List.length t.tlvs)
