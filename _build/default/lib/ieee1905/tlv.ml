type media_type =
  | Ethernet
  | Wifi of int
  | Plc_1901

type iface = {
  mac : string;
  media : media_type;
}

type link_metric = {
  local_mac : string;
  remote_mac : string;
  capacity_mbps : float;
}

type t =
  | End_of_message
  | Al_mac_address of string
  | Mac_address of string
  | Device_information of string * iface list
  | Link_metric of link_metric
  | Unknown of int * string

let t_end = 0x00
let t_al_mac = 0x01
let t_mac = 0x02
let t_device_info = 0x03
let t_link_metric = 0x09

let media_code = function
  | Ethernet -> 0x0000
  | Wifi variant ->
    if variant < 0 || variant > 0xFF then invalid_arg "Tlv: bad wifi variant";
    0x0100 lor variant
  | Plc_1901 -> 0x0200

let media_of_code c =
  match c land 0xFF00 with
  | 0x0000 -> Ethernet
  | 0x0100 -> Wifi (c land 0xFF)
  | 0x0200 -> Plc_1901
  | _ -> invalid_arg "Tlv: unknown media type"

let check_mac m = if String.length m <> 6 then invalid_arg "Tlv: MAC must be 6 bytes"

let buf_u16 b v =
  Buffer.add_char b (Char.chr ((v lsr 8) land 0xFF));
  Buffer.add_char b (Char.chr (v land 0xFF))

let value_bytes = function
  | End_of_message -> ""
  | Al_mac_address m | Mac_address m ->
    check_mac m;
    m
  | Device_information (al, ifaces) ->
    check_mac al;
    let b = Buffer.create 32 in
    Buffer.add_string b al;
    Buffer.add_char b (Char.chr (List.length ifaces));
    List.iter
      (fun i ->
        check_mac i.mac;
        Buffer.add_string b i.mac;
        buf_u16 b (media_code i.media))
      ifaces;
    Buffer.contents b
  | Link_metric lm ->
    check_mac lm.local_mac;
    check_mac lm.remote_mac;
    if (not (Float.is_finite lm.capacity_mbps)) || lm.capacity_mbps < 0.0 then
      invalid_arg "Tlv: bad capacity";
    let b = Buffer.create 16 in
    Buffer.add_string b lm.local_mac;
    Buffer.add_string b lm.remote_mac;
    (* Capacity in units of 0.01 Mbps, 4 bytes. *)
    let units = min 0xFFFFFFFF (int_of_float (Float.round (lm.capacity_mbps *. 100.0))) in
    buf_u16 b ((units lsr 16) land 0xFFFF);
    buf_u16 b (units land 0xFFFF);
    Buffer.contents b
  | Unknown (_, v) -> v

let type_code = function
  | End_of_message -> t_end
  | Al_mac_address _ -> t_al_mac
  | Mac_address _ -> t_mac
  | Device_information _ -> t_device_info
  | Link_metric _ -> t_link_metric
  | Unknown (ty, _) ->
    if ty < 0 || ty > 0xFF then invalid_arg "Tlv: bad type";
    ty

let encode t =
  let v = value_bytes t in
  let n = String.length v in
  if n > 0xFFFF then invalid_arg "Tlv: value too long";
  let b = Bytes.create (3 + n) in
  Bytes.set b 0 (Char.chr (type_code t));
  Bytes.set b 1 (Char.chr ((n lsr 8) land 0xFF));
  Bytes.set b 2 (Char.chr (n land 0xFF));
  Bytes.blit_string v 0 b 3 n;
  b

let get_u16 s off =
  (Char.code (Bytes.get s off) lsl 8) lor Char.code (Bytes.get s (off + 1))

let decode b ~pos =
  if pos + 3 > Bytes.length b then invalid_arg "Tlv.decode: truncated header";
  let ty = Char.code (Bytes.get b pos) in
  let len = get_u16 b (pos + 1) in
  if pos + 3 + len > Bytes.length b then invalid_arg "Tlv.decode: truncated value";
  let v = Bytes.sub_string b (pos + 3) len in
  let next = pos + 3 + len in
  let tlv =
    if ty = t_end then begin
      if len <> 0 then invalid_arg "Tlv.decode: end-of-message with payload";
      End_of_message
    end
    else if ty = t_al_mac then begin
      if len <> 6 then invalid_arg "Tlv.decode: bad AL MAC length";
      Al_mac_address v
    end
    else if ty = t_mac then begin
      if len <> 6 then invalid_arg "Tlv.decode: bad MAC length";
      Mac_address v
    end
    else if ty = t_device_info then begin
      if len < 7 then invalid_arg "Tlv.decode: device info too short";
      let al = String.sub v 0 6 in
      let count = Char.code v.[6] in
      if len <> 7 + (count * 8) then invalid_arg "Tlv.decode: device info length";
      let ifaces =
        List.init count (fun i ->
            let off = 7 + (i * 8) in
            {
              mac = String.sub v off 6;
              media =
                media_of_code
                  ((Char.code v.[off + 6] lsl 8) lor Char.code v.[off + 7]);
            })
      in
      Device_information (al, ifaces)
    end
    else if ty = t_link_metric then begin
      if len <> 16 then invalid_arg "Tlv.decode: link metric length";
      let units =
        (Char.code v.[12] lsl 24) lor (Char.code v.[13] lsl 16)
        lor (Char.code v.[14] lsl 8) lor Char.code v.[15]
      in
      Link_metric
        {
          local_mac = String.sub v 0 6;
          remote_mac = String.sub v 6 6;
          capacity_mbps = float_of_int units /. 100.0;
        }
    end
    else Unknown (ty, v)
  in
  (tlv, next)

let encode_all tlvs =
  let b = Buffer.create 64 in
  List.iter
    (fun t ->
      if t = End_of_message then invalid_arg "Tlv.encode_all: explicit end TLV";
      Buffer.add_bytes b (encode t))
    tlvs;
  Buffer.add_bytes b (encode End_of_message);
  Buffer.to_bytes b

let decode_all b ~pos =
  let rec go pos acc =
    let tlv, next = decode b ~pos in
    match tlv with
    | End_of_message -> List.rev acc
    | _ -> go next (tlv :: acc)
  in
  go pos []

let mac_of_node ~node ~tech =
  if node < 0 || node > 0xFFFF || tech < 0 || tech > 0xFF then
    invalid_arg "Tlv.mac_of_node";
  let s = Bytes.create 6 in
  Bytes.set s 0 '\x02';
  Bytes.set s 1 '\x19';
  Bytes.set s 2 '\x05';
  Bytes.set s 3 (Char.chr tech);
  Bytes.set s 4 (Char.chr ((node lsr 8) land 0xFF));
  Bytes.set s 5 (Char.chr (node land 0xFF));
  Bytes.to_string s

let pp_mac ppf m =
  String.iteri
    (fun i c ->
      if i > 0 then Format.pp_print_char ppf ':';
      Format.fprintf ppf "%02x" (Char.code c))
    m

let pp ppf = function
  | End_of_message -> Format.pp_print_string ppf "end"
  | Al_mac_address m -> Format.fprintf ppf "al-mac(%a)" pp_mac m
  | Mac_address m -> Format.fprintf ppf "mac(%a)" pp_mac m
  | Device_information (al, ifaces) ->
    Format.fprintf ppf "device(%a,%d ifaces)" pp_mac al (List.length ifaces)
  | Link_metric lm ->
    Format.fprintf ppf "metric(%a->%a@%.2fMbps)" pp_mac lm.local_mac pp_mac
      lm.remote_mac lm.capacity_mbps
  | Unknown (ty, v) -> Format.fprintf ppf "unknown(0x%02x,%dB)" ty (String.length v)
