(** IEEE 1905.1 TLVs (type-length-value elements).

    The 1905.1 standard [2] — the paper's "abstraction layer between
    the data link and network layers" — carries all its control
    information as TLVs inside CMDUs. We implement the subset that
    topology discovery and link metrics need:

    {v
    type (1 byte) | length (2 bytes, big-endian) | value
    v}

    - [End_of_message] (0x00) terminates every CMDU;
    - [Al_mac_address] (0x01) identifies the abstraction-layer entity;
    - [Mac_address] (0x02) identifies one interface;
    - [Device_information] (0x03) lists a device's interfaces with
      their 1905.1 media types (802.11, 1901, Ethernet);
    - [Link_metric] (0x09/0x0a, transmitter/receiver form folded into
      one constructor) reports per-link throughput capacity, which is
      exactly what EMPoWER's routing consumes.

    Unknown TLV types survive a decode/encode round trip as
    [Unknown] (the standard requires forwarding them untouched). *)

type media_type =
  | Ethernet            (** 0x0000 *)
  | Wifi of int         (** 0x0100 + variant; the variant encodes the channel here *)
  | Plc_1901            (** 0x0200 *)

type iface = {
  mac : string;             (** 6 raw bytes *)
  media : media_type;
}

type link_metric = {
  local_mac : string;       (** 6 bytes: transmitting interface *)
  remote_mac : string;      (** 6 bytes: receiving interface *)
  capacity_mbps : float;    (** stored on the wire in 0.01 Mbps units *)
}

type t =
  | End_of_message
  | Al_mac_address of string              (** 6 bytes *)
  | Mac_address of string                 (** 6 bytes *)
  | Device_information of string * iface list  (** AL MAC + interfaces *)
  | Link_metric of link_metric
  | Unknown of int * string               (** type, raw value *)

val encode : t -> bytes
(** Serialize one TLV. Raises [Invalid_argument] on malformed MACs
    (not 6 bytes) or out-of-range values. *)

val decode : bytes -> pos:int -> t * int
(** Decode the TLV starting at [pos]; returns it and the position
    after it. Raises [Invalid_argument] on truncation. *)

val encode_all : t list -> bytes
(** Concatenate TLVs and append [End_of_message]. *)

val decode_all : bytes -> pos:int -> t list
(** Decode until (and excluding) [End_of_message]. *)

val mac_of_node : node:int -> tech:int -> string
(** A deterministic locally-administered MAC for a simulated
    interface — 02:19:05:tech:hi:lo. *)

val pp : Format.formatter -> t -> unit
