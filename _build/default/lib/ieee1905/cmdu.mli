(** IEEE 1905.1 CMDUs (control message data units).

    The framing every 1905.1 control message uses:

    {v
    byte 0     message version (0x00)
    byte 1     reserved (0x00)
    bytes 2-3  message type (big-endian)
    bytes 4-5  message id
    byte 6     fragment id
    byte 7     flags: bit7 = last fragment, bit6 = relay indicator
    then TLVs, terminated by end-of-message
    v}

    Message types implemented: topology discovery / notification /
    query / response and link-metric query / response — the parts an
    EMPoWER node needs to learn the hybrid topology through the
    standard instead of (or alongside) its own LSAs. *)

type message_type =
  | Topology_discovery   (** 0x0000 *)
  | Topology_notification (** 0x0001 *)
  | Topology_query       (** 0x0002 *)
  | Topology_response    (** 0x0003 *)
  | Link_metric_query    (** 0x0005 *)
  | Link_metric_response (** 0x0006 *)

type t = {
  message_type : message_type;
  message_id : int;          (** 16-bit, per-sender sequence *)
  fragment : int;            (** 8-bit *)
  last_fragment : bool;
  relay : bool;              (** relayed multicast indicator *)
  tlvs : Tlv.t list;         (** payload, without the end TLV *)
}

val make :
  ?fragment:int ->
  ?last_fragment:bool ->
  ?relay:bool ->
  message_type ->
  message_id:int ->
  Tlv.t list ->
  t
(** Build a CMDU ([Invalid_argument] on out-of-range ids). *)

val encode : t -> bytes
(** Serialize header + TLVs + end-of-message. *)

val decode : bytes -> t
(** Parse; [Invalid_argument] on truncation, bad version, or unknown
    message type. *)

val message_type_code : message_type -> int
(** The 16-bit wire code. *)

val pp : Format.formatter -> t -> unit
