type t = {
  node : int;
  techs : Technology.t array;
  (* remote AL mac -> (highest message id seen, their link metrics) *)
  devices : (string, int * Tlv.link_metric list) Hashtbl.t;
}

let create ~node ~techs = { node; techs; devices = Hashtbl.create 16 }

let node t = t.node

(* The AL MAC uses pseudo-technology 0xFF. *)
let al_mac t = Tlv.mac_of_node ~node:t.node ~tech:0xFF

let media_of_tech (tech : Technology.t) =
  match tech.Technology.medium with
  | Technology.Wifi channel -> Tlv.Wifi channel
  | Technology.Plc -> Tlv.Plc_1901

let node_of_mac m =
  if String.length m <> 6 then None
  else if m.[0] <> '\x02' || m.[1] <> '\x19' || m.[2] <> '\x05' then None
  else begin
    let tech = Char.code m.[3] in
    let node = (Char.code m.[4] lsl 8) lor Char.code m.[5] in
    Some (node, tech)
  end

let topology_response t g ~message_id =
  let ifaces =
    Array.to_list
      (Array.map
         (fun tech ->
           {
             Tlv.mac = Tlv.mac_of_node ~node:t.node ~tech:tech.Technology.index;
             media = media_of_tech tech;
           })
         t.techs)
  in
  let metrics =
    List.filter_map
      (fun l ->
        if Multigraph.usable g l then begin
          let lk = Multigraph.link g l in
          Some
            (Tlv.Link_metric
               {
                 Tlv.local_mac =
                   Tlv.mac_of_node ~node:lk.Multigraph.src ~tech:lk.Multigraph.tech;
                 remote_mac =
                   Tlv.mac_of_node ~node:lk.Multigraph.dst ~tech:lk.Multigraph.tech;
                 capacity_mbps = Multigraph.capacity g l;
               })
        end
        else None)
      (Multigraph.out_links g t.node)
  in
  Cmdu.make Cmdu.Topology_response ~message_id
    (Tlv.Al_mac_address (al_mac t)
    :: Tlv.Device_information (al_mac t, ifaces)
    :: metrics)

let handle t (cmdu : Cmdu.t) =
  match cmdu.Cmdu.message_type with
  | Cmdu.Topology_response | Cmdu.Link_metric_response | Cmdu.Topology_notification ->
    let sender =
      List.find_map
        (function Tlv.Al_mac_address m -> Some m | _ -> None)
        cmdu.Cmdu.tlvs
    in
    (match sender with
    | None -> ()
    | Some al ->
      let fresh =
        match Hashtbl.find_opt t.devices al with
        | Some (last_id, _) -> cmdu.Cmdu.message_id > last_id
        | None -> true
      in
      if fresh then begin
        let metrics =
          List.filter_map
            (function Tlv.Link_metric lm -> Some lm | _ -> None)
            cmdu.Cmdu.tlvs
        in
        Hashtbl.replace t.devices al (cmdu.Cmdu.message_id, metrics)
      end)
  | Cmdu.Topology_discovery | Cmdu.Topology_query | Cmdu.Link_metric_query -> ()

let known_devices t = Hashtbl.length t.devices

let graph t ~n_nodes =
  let n_techs = Array.length t.techs in
  let claims = Hashtbl.create 64 in
  Hashtbl.iter
    (fun _ (_, metrics) ->
      List.iter
        (fun (lm : Tlv.link_metric) ->
          match (node_of_mac lm.Tlv.local_mac, node_of_mac lm.Tlv.remote_mac) with
          | Some (u, tu), Some (v, tv)
            when tu = tv && tu < n_techs && u < n_nodes && v < n_nodes && u <> v
                 && lm.Tlv.capacity_mbps > 0.0 ->
            let key = (min u v, max u v, tu) in
            let prev = try Hashtbl.find claims key with Not_found -> [] in
            Hashtbl.replace claims key (lm.Tlv.capacity_mbps :: prev)
          | _ -> ())
        metrics)
    t.devices;
  let edges =
    Hashtbl.fold
      (fun (u, v, tech) caps acc ->
        let mean = List.fold_left ( +. ) 0.0 caps /. float_of_int (List.length caps) in
        (u, v, tech, mean) :: acc)
      claims []
    |> List.sort compare
  in
  Multigraph.create ~n_nodes ~n_techs ~edges
