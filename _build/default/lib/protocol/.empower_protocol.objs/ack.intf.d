lib/protocol/ack.mli:
