lib/protocol/header.ml: Array Bytes Char Float Format Route_codec String
