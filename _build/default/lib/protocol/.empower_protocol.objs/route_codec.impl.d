lib/protocol/route_codec.ml: Array Int64 List Multigraph Paths
