lib/protocol/route_codec.mli: Multigraph Paths
