lib/protocol/ack.ml: Array List
