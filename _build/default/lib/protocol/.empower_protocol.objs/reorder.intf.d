lib/protocol/reorder.mli:
