lib/protocol/reorder.ml: Array Float Int List Map
