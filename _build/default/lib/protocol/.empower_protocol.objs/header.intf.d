lib/protocol/header.mli: Format Route_codec
