type t = {
  seq : int;
  qr : float;
  route : Route_codec.route;
}

let size = 20

let qr_scale = 1048576.0 (* 2^20 *)

let qr_resolution = 1.0 /. qr_scale

let qr_max = (4294967295.0 /. qr_scale)

let make ~seq ~qr ~route =
  if seq < 0 || seq > 0xFFFFFFFF then invalid_arg "Header.make: bad seq";
  if qr < 0.0 || not (Float.is_finite qr) then invalid_arg "Header.make: bad qr";
  if Array.length route > Route_codec.max_hops then
    invalid_arg "Header.make: route too long";
  Array.iter
    (fun h -> if h < 1 || h > 0xFFFF then invalid_arg "Header.make: bad route entry")
    route;
  { seq; qr; route }

let add_price t p =
  if p < 0.0 then invalid_arg "Header.add_price: negative price";
  { t with qr = Float.min qr_max (t.qr +. p) }

let put_u16 b off v =
  Bytes.set b off (Char.chr ((v lsr 8) land 0xFF));
  Bytes.set b (off + 1) (Char.chr (v land 0xFF))

let get_u16 b off = (Char.code (Bytes.get b off) lsl 8) lor Char.code (Bytes.get b (off + 1))

let put_u32 b off v =
  put_u16 b off ((v lsr 16) land 0xFFFF);
  put_u16 b (off + 2) (v land 0xFFFF)

let get_u32 b off = (get_u16 b off lsl 16) lor get_u16 b (off + 2)

let encode t =
  let b = Bytes.make size '\000' in
  put_u32 b 0 t.seq;
  let qr_fixed =
    let v = Float.round (Float.min qr_max t.qr *. qr_scale) in
    int_of_float (Float.min v 4294967295.0)
  in
  put_u32 b 4 qr_fixed;
  Array.iteri (fun i h -> put_u16 b (8 + (2 * i)) h) t.route;
  b

let decode b =
  if Bytes.length b <> size then invalid_arg "Header.decode: expected 20 bytes";
  let seq = get_u32 b 0 in
  let qr = float_of_int (get_u32 b 4) /. qr_scale in
  let entries = Array.init Route_codec.max_hops (fun i -> get_u16 b (8 + (2 * i))) in
  (* Route = the non-zero prefix; zero padding must be a suffix. *)
  let len = ref 0 in
  let seen_zero = ref false in
  Array.iter
    (fun h ->
      if h = 0 then seen_zero := true
      else begin
        if !seen_zero then invalid_arg "Header.decode: malformed route padding";
        incr len
      end)
    entries;
  { seq; qr; route = Array.sub entries 0 !len }

let equal a b = a.seq = b.seq && a.qr = b.qr && a.route = b.route

let pp ppf t =
  Format.fprintf ppf "seq=%d qr=%.6f route=[%s]" t.seq t.qr
    (String.concat ";" (Array.to_list (Array.map string_of_int t.route)))
