(** Interface identifiers and the 12-byte source-route field.

    EMPoWER uses short hashes of the interfaces' MAC addresses as
    layer-2.5 identifiers: 2 bytes per ingress interface along the
    route, at most 6 hops (Section 6.1). In the simulator an interface
    is a (node, technology) pair; its identifier is a deterministic
    16-bit hash, never zero (zero marks unused route slots). An
    intermediate node locates its own interface hash in the route and
    forwards toward the next entry. *)

val max_hops : int
(** 6, the paper's route-length limit. *)

val iface_hash : node:int -> tech:int -> int
(** Deterministic 16-bit identifier of an interface, in [1, 0xffff].
    Collisions are possible in principle (16-bit space) but never
    occur on paper-scale networks; {!route_of_path} raises if two
    interfaces of the same route collide. *)

type route = int array
(** Ingress-interface hashes along the route, in hop order
    (length <= {!max_hops}, entries in [1, 0xffff]). *)

val route_of_path : Multigraph.t -> Paths.t -> route
(** Compile a path: one entry per hop, the hash of the receiving
    (ingress) interface of that hop. Raises [Invalid_argument] when
    the path exceeds {!max_hops} or on a hash collision within the
    route. *)

val next_hop : route -> my_ifaces:int list -> int option
(** Forwarding decision at a node owning the given interface hashes:
    [Some h] is the ingress-interface hash of the next hop; [None]
    when this node's interface is the route's last entry (the node is
    the destination) or none of its interfaces appear (misrouted;
    drop). The hop after entry i is entry i+1. *)

val is_destination : route -> my_ifaces:int list -> bool
(** Whether one of the node's interfaces is the final route entry. *)
