(** The fixed 20-byte EMPoWER layer-2.5 header (Section 6.1).

    Wire layout (big-endian):
    {v
    bytes  0..3   sequence number (uint32)
    bytes  4..7   q_r accumulator, unsigned fixed-point Q12.20
    bytes  8..19  source route: 6 x 2-byte ingress-interface hashes,
                  zero-padded beyond the route length
    v}

    The sequence number orders packets of one flow across routes (the
    destination reorders on it); q_r is the running congestion price
    of the route so far — every forwarding node adds
    [d_l * Σ_{i ∈ I_l} γ_i] before transmitting on link l — and is
    echoed to the source in acknowledgements. *)

type t = {
  seq : int;          (** sequence number, [0, 2^32) *)
  qr : float;         (** accumulated route cost, >= 0 *)
  route : Route_codec.route;
}

val size : int
(** 20 bytes. *)

val qr_resolution : float
(** Smallest representable q_r increment (2^-20). *)

val qr_max : float
(** Largest representable q_r (just under 4096); larger values
    saturate on encode. *)

val make : seq:int -> qr:float -> route:Route_codec.route -> t
(** Build a header. Raises [Invalid_argument] on a negative or
    overflowing sequence number, negative q_r, or an over-long
    route. *)

val add_price : t -> float -> t
(** [add_price h p] accumulates a non-negative hop price into [qr]
    (the forwarding-time update), saturating at {!qr_max}. *)

val encode : t -> bytes
(** Serialize to exactly 20 bytes. q_r is rounded to the wire
    resolution and saturates at {!qr_max}. *)

val decode : bytes -> t
(** Parse a 20-byte header. Raises [Invalid_argument] on wrong length
    or a route with a non-zero entry after a zero entry (malformed
    padding). *)

val equal : t -> t -> bool
(** Field-wise equality (q_r compared exactly). *)

val pp : Format.formatter -> t -> unit
(** Debug printer. *)
