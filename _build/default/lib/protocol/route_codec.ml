let max_hops = 6

(* SplitMix-style scramble of the interface index, folded to 16 bits;
   0 is reserved for "unused slot". *)
let iface_hash ~node ~tech =
  let z = Int64.of_int (((node + 1) * 131) + (tech * 7919)) in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  let h = Int64.to_int (Int64.logand z 0xFFFFL) in
  if h = 0 then 1 else h

type route = int array

let route_of_path g path =
  let hops = path.Paths.links in
  if List.length hops > max_hops then
    invalid_arg "Route_codec.route_of_path: more than 6 hops";
  let entries =
    List.map
      (fun l ->
        let lk = Multigraph.link g l in
        iface_hash ~node:lk.Multigraph.dst ~tech:lk.Multigraph.tech)
      hops
  in
  let arr = Array.of_list entries in
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  for i = 0 to Array.length sorted - 2 do
    if sorted.(i) = sorted.(i + 1) then
      invalid_arg "Route_codec.route_of_path: interface hash collision in route"
  done;
  arr

let find_own route ~my_ifaces =
  let n = Array.length route in
  let rec go i =
    if i >= n then None
    else if List.mem route.(i) my_ifaces then Some i
    else go (i + 1)
  in
  go 0

let next_hop route ~my_ifaces =
  match find_own route ~my_ifaces with
  | None -> None
  | Some i -> if i + 1 < Array.length route then Some route.(i + 1) else None

let is_destination route ~my_ifaces =
  match find_own route ~my_ifaces with
  | None -> false
  | Some i -> i = Array.length route - 1
