module Int_set = Set.Make (Int)

let bron_kerbosch ~n ~neighbors =
  let nbr = Array.init n (fun v -> Int_set.of_list (neighbors v)) in
  let cliques = ref [] in
  (* Pivoted Bron-Kerbosch: r = current clique, p = candidates,
     x = already-covered vertices. *)
  let rec go r p x =
    if Int_set.is_empty p && Int_set.is_empty x then
      cliques := Int_set.elements r :: !cliques
    else begin
      (* Pivot: vertex of p U x with most neighbors in p. *)
      let pivot =
        let best = ref (-1) and bestn = ref (-1) in
        Int_set.iter
          (fun v ->
            let cnt = Int_set.cardinal (Int_set.inter nbr.(v) p) in
            if cnt > !bestn then begin
              bestn := cnt;
              best := v
            end)
          (Int_set.union p x);
        !best
      in
      let candidates =
        if pivot < 0 then p else Int_set.diff p nbr.(pivot)
      in
      let p = ref p and x = ref x in
      Int_set.iter
        (fun v ->
          go (Int_set.add v r) (Int_set.inter !p nbr.(v)) (Int_set.inter !x nbr.(v));
          p := Int_set.remove v !p;
          x := Int_set.add v !x)
        candidates
    end
  in
  go Int_set.empty (Int_set.of_list (List.init n Fun.id)) Int_set.empty;
  List.sort compare !cliques
