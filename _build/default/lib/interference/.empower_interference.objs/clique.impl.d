lib/interference/clique.ml: Array Fun Int List Set
