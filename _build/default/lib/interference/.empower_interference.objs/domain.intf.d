lib/interference/domain.mli: Builder Geometry Multigraph Technology
