lib/interference/clique.mli:
