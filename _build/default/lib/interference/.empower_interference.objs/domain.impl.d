lib/interference/domain.ml: Array Builder Clique Float Geometry Multigraph Technology
