(** Interference domains I_l (Section 2).

    The interference domain of link [l] contains [l] itself and every
    link that cannot transmit simultaneously with [l]. Both WiFi
    (802.11 CSMA/CA) and PLC (IEEE 1901 CSMA/CA) are shared mediums,
    so interference exists within each technology and never across
    technologies:

    - two WiFi links on the same channel interfere when any endpoint
      of one senses any endpoint of the other (perfect carrier
      sensing, range = carrier-sense factor x connection radius);
    - all PLC links under the same central coordinator (same
      electrical panel) form one collision domain [IEEE 1901];
    - the two directions of a physical edge always interfere.

    A {!t} is precomputed once per multigraph and queried by routing,
    congestion control, the optimal baselines and the MAC simulator. *)

type t
(** Symmetric interference structure over the links of one multigraph. *)

val create : Multigraph.t -> interferes:(int -> int -> bool) -> t
(** Build from an explicit pairwise predicate (symmetrized; peers and
    self are always included). *)

val standard :
  ?cs_factor:float ->
  Multigraph.t ->
  techs:Technology.t array ->
  positions:Geometry.point array ->
  panels:int array ->
  t
(** The physical model described above. [cs_factor] (default 1.5)
    scales each WiFi technology's connection radius into its
    carrier-sense radius. [positions] and [panels] are indexed by node
    id; [techs] by technology index. *)

val of_instance : Builder.instance -> Builder.scenario -> Multigraph.t -> t
(** Convenience: {!standard} wired to a topology instance's positions
    and panels, with the scenario's technology table. *)

val single_domain_per_tech : Multigraph.t -> t
(** Every pair of same-technology links interferes — the small-network
    limit (used by unit tests and the paper's illustrating examples,
    e.g. Figure 3's "all links using the same medium interfere"). *)

val interferes : t -> int -> int -> bool
(** [interferes t l l'] — symmetric; [interferes t l l = true]. *)

val domain : t -> int -> int list
(** I_l: the sorted ids of links interfering with [l] (includes [l]). *)

val num_links : t -> int
(** Number of links covered. *)

val graph_cliques : t -> int list list
(** Maximal cliques of the link-interference graph (via
    {!Clique.bron_kerbosch}); the exact airtime constraints of the
    centralized optimal scheduler are one inequality per clique. *)
