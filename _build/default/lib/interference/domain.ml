type t = {
  matrix : bool array array;  (* symmetric pairwise interference *)
  domains : int list array;   (* I_l, sorted, includes l *)
}

let build_domains matrix =
  let n = Array.length matrix in
  Array.init n (fun l ->
      let acc = ref [] in
      for l' = n - 1 downto 0 do
        if matrix.(l).(l') then acc := l' :: !acc
      done;
      !acc)

let create g ~interferes =
  let n = Multigraph.num_links g in
  let matrix = Array.make_matrix n n false in
  for l = 0 to n - 1 do
    matrix.(l).(l) <- true;
    let peer = (Multigraph.link g l).Multigraph.peer in
    matrix.(l).(peer) <- true;
    for l' = l + 1 to n - 1 do
      if interferes l l' || interferes l' l then begin
        matrix.(l).(l') <- true;
        matrix.(l').(l) <- true
      end
    done
  done;
  { matrix; domains = build_domains matrix }

let endpoint_distance positions (a : Multigraph.link) (b : Multigraph.link) =
  let dist u v = Geometry.distance positions.(u) positions.(v) in
  let open Multigraph in
  Float.min
    (Float.min (dist a.src b.src) (dist a.src b.dst))
    (Float.min (dist a.dst b.src) (dist a.dst b.dst))

let standard ?(cs_factor = 1.5) g ~techs ~positions ~panels =
  let interferes l l' =
    let a = Multigraph.link g l and b = Multigraph.link g l' in
    let open Multigraph in
    if a.tech <> b.tech then false
    else begin
      let tech = techs.(a.tech) in
      if Technology.is_plc tech then
        (* One collision domain per electrical panel (one coordinator). *)
        panels.(a.src) = panels.(b.src)
      else begin
        let cs_range = cs_factor *. tech.Technology.conn_radius_m in
        a.src = b.src || a.src = b.dst || a.dst = b.src || a.dst = b.dst
        || endpoint_distance positions a b <= cs_range
      end
    end
  in
  create g ~interferes

let of_instance inst scenario g =
  let nodes = inst.Builder.nodes in
  let positions = Array.map (fun nd -> nd.Builder.pos) nodes in
  let panels = Array.map (fun nd -> nd.Builder.panel) nodes in
  standard g ~techs:(Builder.techs scenario) ~positions ~panels

let single_domain_per_tech g =
  let interferes l l' =
    (Multigraph.link g l).Multigraph.tech = (Multigraph.link g l').Multigraph.tech
  in
  create g ~interferes

let interferes t l l' = t.matrix.(l).(l')

let domain t l = t.domains.(l)

let num_links t = Array.length t.matrix

let graph_cliques t =
  let n = Array.length t.matrix in
  let neighbors v =
    let acc = ref [] in
    for u = n - 1 downto 0 do
      if u <> v && t.matrix.(v).(u) then acc := u :: !acc
    done;
    !acc
  in
  Clique.bron_kerbosch ~n ~neighbors
