(** Maximal cliques of an undirected graph (Bron–Kerbosch).

    The exact airtime-feasibility region of a perfectly scheduled
    shared medium has one constraint per maximal clique of the
    link-interference graph; the optimal baselines of Section 5.2.2
    need these cliques. Pivoted Bron–Kerbosch is exponential in the
    worst case but instantaneous on the paper-scale networks (tens to
    a few hundred links whose interference graphs are near-cliques
    per medium). *)

val bron_kerbosch : n:int -> neighbors:(int -> int list) -> int list list
(** All maximal cliques of the graph on vertices [0..n-1]. [neighbors]
    must be symmetric and irreflexive. Each clique is sorted; the list
    order is deterministic. Singleton vertices yield singleton
    cliques. *)
