(** The centralized optimal baselines of Section 5.2.2.

    "optimal" is the utility/throughput optimum over the exact
    (clique) airtime polytope — what the backpressure scheme of Neely
    et al. [27] achieves at steady state with a perfect centralized
    scheduler. "conservative opt" is the optimum under EMPoWER's
    conservative per-link constraint (2). Both are computed exactly:

    - single-flow maximum throughput is a linear program over the
      arc-flow region ({!Simplex});
    - multi-flow utility maximization is concave over the same
      polytope and is solved by Frank–Wolfe with the LP as linear
      oracle and golden-section line search.

    Comparing EMPoWER to "conservative opt" isolates the quality of
    the multipath route selection (both use (2)); comparing to
    "optimal" adds the cost of conservatism. *)

val max_throughput :
  ?delta:float ->
  Rate_region.model ->
  Multigraph.t ->
  Domain.t ->
  src:int ->
  dst:int ->
  float
(** The maximum rate of a single flow with optimal (fractional,
    multipath) routing under the chosen interference model. 0 when
    the destination is unreachable. *)

val max_utility :
  ?delta:float ->
  ?iterations:int ->
  ?utility:Utility.t ->
  Rate_region.model ->
  Multigraph.t ->
  Domain.t ->
  flows:(int * int) list ->
  float array
(** Utility-optimal flow rates for several concurrent flows
    (default proportional fairness, 200 Frank–Wolfe iterations —
    enough for < 0.1% objective error on paper-scale networks). *)
