type t =
  | Empower
  | Sp
  | Sp_wifi
  | Mp_wifi
  | Mp_mwifi
  | Mp_wo_cc
  | Sp_wo_cc
  | Mp_2bp

let all = [ Empower; Sp; Mp_wifi; Sp_wifi; Mp_mwifi; Mp_wo_cc; Sp_wo_cc; Mp_2bp ]

let name = function
  | Empower -> "EMPoWER"
  | Sp -> "SP"
  | Sp_wifi -> "SP-WiFi"
  | Mp_wifi -> "MP-WiFi"
  | Mp_mwifi -> "MP-mWiFi"
  | Mp_wo_cc -> "MP-w/o-CC"
  | Sp_wo_cc -> "SP-w/o-CC"
  | Mp_2bp -> "MP-2bp"

let scenario = function
  | Empower | Sp | Mp_wo_cc | Sp_wo_cc | Mp_2bp -> Builder.Hybrid
  | Sp_wifi | Mp_wifi -> Builder.Single_wifi
  | Mp_mwifi -> Builder.Multi_wifi

let uses_cc = function
  | Empower | Sp | Sp_wifi | Mp_wifi | Mp_mwifi | Mp_2bp -> true
  | Mp_wo_cc | Sp_wo_cc -> false

type options = {
  delta : float;
  estimate_noise : float;
  n_shortest : int;
  cc_slots : int;
}

let default_options =
  { delta = 0.0; estimate_noise = 0.0; n_shortest = 5; cc_slots = 2000 }

(* The CSC only matters when there are different technologies to
   alternate; the paper sets it to 0 in WiFi-only scenarios. With two
   orthogonal WiFi channels alternation still mitigates intra-path
   interference, so we keep it for Multi_wifi. *)
let csc_for scheme =
  match scenario scheme with Builder.Single_wifi -> false | _ -> true

let routes_for ?(opts = default_options) scheme g dom ~src ~dst =
  let csc = csc_for scheme in
  match scheme with
  | Sp | Sp_wifi | Sp_wo_cc -> (
    match Single_path.route ~csc g ~src ~dst with None -> [] | Some (p, _) -> [ p ])
  | Mp_2bp -> List.map fst (Yen.k_shortest ~csc g ~src ~dst ~k:2)
  | Empower | Mp_wifi | Mp_mwifi | Mp_wo_cc ->
    Multipath.routes (Multipath.find ~n:opts.n_shortest ~csc g dom ~src ~dst)

(* Multiplicative estimation noise on every link capacity; both
   directions of an edge see the same (measured) value. *)
let estimated_graph rng ~noise g =
  if noise <= 0.0 then g
  else begin
    let caps = Multigraph.capacities g in
    let n_links = Multigraph.num_links g in
    let l = ref 0 in
    while !l < n_links do
      let eps = Rng.gaussian rng ~mean:0.0 ~std:noise in
      let factor = Float.max 0.1 (1.0 +. eps) in
      caps.(!l) <- caps.(!l) *. factor;
      caps.(!l + 1) <- caps.(!l + 1) *. factor;
      l := !l + 2
    done;
    Multigraph.with_capacities g caps
  end

(* Sum a flat per-route list back into per-flow totals, following the
   flow_routes structure. *)
let per_flow_totals flow_routes per_route =
  let result = Array.make (List.length flow_routes) 0.0 in
  let rest = ref per_route in
  List.iteri
    (fun f ps ->
      List.iter
        (fun _ ->
          match !rest with
          | [] -> invalid_arg "per_flow_totals: list too short"
          | v :: tl ->
            result.(f) <- result.(f) +. v;
            rest := tl)
        ps)
    flow_routes;
  result

let evaluate ?(opts = default_options) rng inst scheme ~flows =
  let scen = scenario scheme in
  let g_true = Builder.graph inst scen in
  let dom = Domain.of_instance inst scen g_true in
  let g_est = estimated_graph rng ~noise:opts.estimate_noise g_true in
  (* Route selection and rate estimation run on the estimated view. *)
  let flow_routes =
    List.map (fun (s, d) -> routes_for ~opts scheme g_est dom ~src:s ~dst:d) flows
  in
  let standalone_rates =
    List.map (List.map (fun p -> Update.path_rate g_est dom p)) flow_routes
  in
  let all_routes = List.concat flow_routes in
  if all_routes = [] then Array.make (List.length flows) 0.0
  else if not (uses_cc scheme) then begin
    (* Inject each route's standalone estimate; the MAC decides what
       actually arrives. *)
    let offered = List.combine all_routes (List.concat standalone_rates) in
    let delivered = Fluid.goodput g_true dom ~offered in
    per_flow_totals flow_routes delivered
  end
  else begin
    (* Controller believes the estimated airtime costs; its allocation
       is then pushed through the MAC on the true capacities. *)
    let d_est = Array.init (Multigraph.num_links g_est) (Multigraph.d g_est) in
    let problem =
      Problem.make ~delta:opts.delta ~d:d_est g_true dom ~flows:flow_routes
    in
    let x_init = Array.of_list (List.concat standalone_rates) in
    let res = Multi_cc.solve ~x_init ~slots:opts.cc_slots ~stop_tol:0.05 problem in
    let offered =
      List.mapi (fun r p -> (p, res.Cc_result.rates.(r))) all_routes
    in
    let delivered = Fluid.goodput g_true dom ~offered in
    per_flow_totals flow_routes delivered
  end
