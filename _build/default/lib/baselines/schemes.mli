(** The eight evaluation schemes of Section 5.1.

    Each scheme is a combination of technology set, routing procedure
    and congestion control:

    - [Empower]  — multipath routing, CC, PLC/WiFi;
    - [Sp]       — single-path routing, CC, PLC/WiFi;
    - [Mp_wifi]  — multipath routing, CC, single-channel WiFi;
    - [Sp_wifi]  — single-path routing, CC, single-channel WiFi;
    - [Mp_mwifi] — multipath routing, CC, two-channel WiFi;
    - [Mp_wo_cc] — multipath routing, {e no} CC, PLC/WiFi;
    - [Sp_wo_cc] — single-path routing, {e no} CC, PLC/WiFi;
    - [Mp_2bp]   — naive multipath returning the two shortest paths
                   (2-shortest), CC, PLC/WiFi.

    [evaluate] runs a scheme on one topology instance and a list of
    concurrent flows and returns the delivered per-flow rates:
    CC schemes run the multipath controller on the selected routes
    (initialized at the routing-estimated rates) and the resulting
    injection is checked against the fluid MAC; w/o-CC schemes inject
    each route's standalone rate estimate and suffer whatever the MAC
    delivers. Optional capacity-estimation noise and the constraint
    margin δ reproduce testbed (Section 6) conditions; the defaults
    (no noise, δ = 0) reproduce the idealized simulations (Section 5). *)

type t =
  | Empower
  | Sp
  | Sp_wifi
  | Mp_wifi
  | Mp_mwifi
  | Mp_wo_cc
  | Sp_wo_cc
  | Mp_2bp

val all : t list
(** All schemes, in the paper's listing order. *)

val name : t -> string
(** Paper-style name, e.g. ["MP-mWiFi"]. *)

val scenario : t -> Builder.scenario
(** Technology set the scheme runs on. *)

val uses_cc : t -> bool
(** Whether the congestion controller is active. *)

type options = {
  delta : float;          (** constraint margin δ of (3); default 0 *)
  estimate_noise : float; (** relative std of capacity estimation error; default 0 *)
  n_shortest : int;       (** n of n-shortest; default 5 *)
  cc_slots : int;         (** controller slots to run; default 3000 *)
}

val default_options : options
(** δ = 0, no estimation noise, n = 5, 3000 slots. *)

val routes_for :
  ?opts:options ->
  t ->
  Multigraph.t ->
  Domain.t ->
  src:int ->
  dst:int ->
  Paths.t list
(** The routes the scheme's routing procedure selects on the given
    (possibly estimate-based) graph. Empty when unreachable. *)

val evaluate :
  ?opts:options ->
  Rng.t ->
  Builder.instance ->
  t ->
  flows:(int * int) list ->
  float array
(** Delivered rate of each flow (Mbit/s). The [Rng.t] drives the
    estimation noise only; with [estimate_noise = 0] the result is
    deterministic. *)
