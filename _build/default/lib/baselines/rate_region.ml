type model = Exact | Conservative

type t = {
  g : Multigraph.t;
  flows : (int * int) array;
  usable : int array;          (* usable link ids, dense order *)
  pos_of_link : int array;     (* link id -> position in usable, or -1 *)
  n_vars : int;
  rows : (float array * Simplex.op * float) list;
}

let var t ~flow ~pos = (flow * Array.length t.usable) + pos

let build ?(delta = 0.0) model g dom ~flows =
  List.iter
    (fun (s, d) -> if s = d then invalid_arg "Rate_region.build: src = dst")
    flows;
  let flows = Array.of_list flows in
  let n_links = Multigraph.num_links g in
  let usable =
    Array.of_list
      (List.filter (Multigraph.usable g) (List.init n_links Fun.id))
  in
  let pos_of_link = Array.make n_links (-1) in
  Array.iteri (fun pos l -> pos_of_link.(l) <- pos) usable;
  let nu = Array.length usable in
  let n_flows = Array.length flows in
  let n_vars = n_flows * nu in
  let t0 = { g; flows; usable; pos_of_link; n_vars; rows = [] } in
  let rows = ref [] in
  (* Conservation: for each flow, at every node that is not an
     endpoint, inflow = outflow. *)
  Array.iteri
    (fun f (s, d) ->
      for v = 0 to Multigraph.n_nodes g - 1 do
        if v <> s && v <> d then begin
          let row = Array.make n_vars 0.0 in
          List.iter
            (fun l ->
              let pos = pos_of_link.(l) in
              if pos >= 0 then row.(var t0 ~flow:f ~pos) <- 1.0)
            (Multigraph.in_links g v);
          List.iter
            (fun l ->
              let pos = pos_of_link.(l) in
              if pos >= 0 then
                row.(var t0 ~flow:f ~pos) <- row.(var t0 ~flow:f ~pos) -. 1.0)
            (Multigraph.out_links g v);
          rows := (row, Simplex.Eq, 0.0) :: !rows
        end
      done)
    flows;
  (* Airtime rows. *)
  let budget = 1.0 -. delta in
  let add_airtime_row link_set =
    let row = Array.make n_vars 0.0 in
    let nonzero = ref false in
    List.iter
      (fun l ->
        let pos = pos_of_link.(l) in
        if pos >= 0 then begin
          nonzero := true;
          let dl = Multigraph.d g l in
          for f = 0 to n_flows - 1 do
            row.(var t0 ~flow:f ~pos) <- dl
          done
        end)
      link_set;
    if !nonzero then rows := (row, Simplex.Le, budget) :: !rows
  in
  (match model with
  | Exact -> List.iter add_airtime_row (Domain.graph_cliques dom)
  | Conservative ->
    Array.iter (fun l -> add_airtime_row (Domain.domain dom l)) usable);
  { t0 with rows = List.rev !rows }

let n_vars t = t.n_vars

let rows t = t.rows

let flow_value_coeffs t f =
  let s, _ = t.flows.(f) in
  let c = Array.make t.n_vars 0.0 in
  List.iter
    (fun l ->
      let pos = t.pos_of_link.(l) in
      if pos >= 0 then c.(var t ~flow:f ~pos) <- 1.0)
    (Multigraph.out_links t.g s);
  List.iter
    (fun l ->
      let pos = t.pos_of_link.(l) in
      if pos >= 0 then c.(var t ~flow:f ~pos) <- c.(var t ~flow:f ~pos) -. 1.0)
    (Multigraph.in_links t.g s);
  c

let flow_values t y =
  Array.init (Array.length t.flows) (fun f ->
      let c = flow_value_coeffs t f in
      let acc = ref 0.0 in
      Array.iteri (fun j cj -> if cj <> 0.0 then acc := !acc +. (cj *. y.(j))) c;
      !acc)

let total_value_coeffs t =
  let c = Array.make t.n_vars 0.0 in
  for f = 0 to Array.length t.flows - 1 do
    let cf = flow_value_coeffs t f in
    Array.iteri (fun j v -> c.(j) <- c.(j) +. v) cf
  done;
  c
