(** Fluid approximation of the CSMA MAC: delivered goodput for given
    offered route rates.

    Used to evaluate schemes *without* congestion control (MP-w/o-CC,
    SP-w/o-CC) and the brute-force rate sweeps: traffic is injected at
    the offered rate on each route regardless of what the network can
    carry; links in overloaded collision domains serve proportionally
    to demand ("equal transmission opportunities" CSMA), and traffic
    dropped at hop k still consumed airtime at hops < k — the classic
    multihop congestion-collapse the paper's intro cites [11, 33].

    The model iterates the per-link demand / per-domain scaling fixed
    point to convergence; with EMPoWER-feasible rates (constraint (2)
    satisfied) it delivers exactly the offered rates. *)

val goodput :
  ?iterations:int ->
  Multigraph.t ->
  Domain.t ->
  offered:(Paths.t * float) list ->
  float list
(** Delivered end-to-end rate of each (route, offered rate) pair, in
    order. [iterations] (default 50) bounds the fixed-point loop;
    convergence is typically reached within ~10. Offered rates must be
    [>= 0]. *)

val link_airtime :
  ?iterations:int ->
  Multigraph.t ->
  Domain.t ->
  offered:(Paths.t * float) list ->
  float array
(** The airtime fraction each link ends up using under the same
    dynamics (diagnostic; also used by tests). *)
