let max_throughput ?delta model g dom ~src ~dst =
  let region = Rate_region.build ?delta model g dom ~flows:[ (src, dst) ] in
  let c = Rate_region.flow_value_coeffs region 0 in
  match Simplex.maximize ~c ~rows:(Rate_region.rows region) with
  | Simplex.Optimal (_, v) -> Float.max 0.0 v
  | Simplex.Infeasible -> 0.0
  | Simplex.Unbounded ->
    (* Airtime rows bound every usable link, so flows are bounded. *)
    assert false

(* Golden-section search for the maximum of a concave function on
   [0, 1]. *)
let golden_max f =
  let phi = (sqrt 5.0 -. 1.0) /. 2.0 in
  let rec go a b fa fb n =
    if n = 0 then (a +. b) /. 2.0
    else begin
      let x1 = b -. (phi *. (b -. a)) in
      let x2 = a +. (phi *. (b -. a)) in
      if f x1 >= f x2 then go a x2 fa (f x2) (n - 1) else go x1 b (f x1) fb (n - 1)
    end
  in
  go 0.0 1.0 (f 0.0) (f 1.0) 40

let max_utility ?delta ?(iterations = 200) ?(utility = Utility.proportional_fair)
    model g dom ~flows =
  let region = Rate_region.build ?delta model g dom ~flows in
  let n = Rate_region.n_vars region in
  let rows = Rate_region.rows region in
  let n_flows = List.length flows in
  let value_coeffs = Array.init n_flows (Rate_region.flow_value_coeffs region) in
  let flow_values y =
    Array.map
      (fun c ->
        let acc = ref 0.0 in
        Array.iteri (fun j cj -> if cj <> 0.0 then acc := !acc +. (cj *. y.(j))) c;
        !acc)
      value_coeffs
  in
  let objective y =
    Array.fold_left
      (fun acc x -> acc +. utility.Utility.u (Float.max 0.0 x))
      0.0 (flow_values y)
  in
  let y = Array.make n 0.0 in
  let exception Converged in
  (try
     for _ = 1 to iterations do
       let x = flow_values y in
       (* Linearized objective: Σ_f U'(x_f) * x_f(y). *)
       let grad = Array.make n 0.0 in
       Array.iteri
         (fun f c ->
           let w = utility.Utility.u' (Float.max 0.0 x.(f)) in
           Array.iteri (fun j cj -> grad.(j) <- grad.(j) +. (w *. cj)) c)
         value_coeffs;
       match Simplex.maximize ~c:grad ~rows with
       | Simplex.Infeasible | Simplex.Unbounded -> raise Converged
       | Simplex.Optimal (v, _) ->
         (* Frank-Wolfe gap check. *)
         let gap = ref 0.0 in
         Array.iteri (fun j g' -> gap := !gap +. (g' *. (v.(j) -. y.(j)))) grad;
         if !gap < 1e-6 then raise Converged;
         let f_line theta =
           let yt = Array.mapi (fun j yj -> yj +. (theta *. (v.(j) -. yj))) y in
           objective yt
         in
         let theta = golden_max f_line in
         Array.iteri (fun j yj -> y.(j) <- yj +. (theta *. (v.(j) -. yj))) y
     done
   with Converged -> ());
  Array.map (Float.max 0.0) (flow_values y)
