let best_rate_on_path ?(step = 2.0) g dom path =
  (* Sweep to just past the best single-link capacity on the route —
     no delivered rate can exceed it. *)
  let cap_bound =
    List.fold_left
      (fun acc l -> Float.max acc (Multigraph.capacity g l))
      0.0 path.Paths.links
  in
  let best = ref 0.0 in
  let offered = ref step in
  while !offered <= cap_bound +. step do
    (match Fluid.goodput g dom ~offered:[ (path, !offered) ] with
    | [ delivered ] -> if delivered > !best then best := delivered
    | _ -> assert false);
    offered := !offered +. step
  done;
  !best

let sp_bf ?(csc = true) ?step g dom ~src ~dst =
  match Single_path.route ~csc g ~src ~dst with
  | None -> 0.0
  | Some (p, _) -> best_rate_on_path ?step g dom p
