type result = {
  flow_rates : float array;
  trace : float array array;
  slots : int;
  convergence_slot : int option;
}

let run ?(v = 300.0) ?(a_max = 200.0) ?(slots = 20000) ?(window = 200)
    ?(utility = Utility.proportional_fair) g dom ~flows =
  let flows = Array.of_list flows in
  let n_flows = Array.length flows in
  let n_nodes = Multigraph.n_nodes g in
  let n_links = Multigraph.num_links g in
  (* q.(node).(flow): backlog in Mbit. One slot serves c_l Mbit on an
     activated link (i.e. a slot is "one second" of the fluid rate). *)
  let q = Array.make_matrix n_nodes n_flows 0.0 in
  let delivered_window = Array.init n_flows (fun _ -> Queue.create ()) in
  let window_sum = Array.make n_flows 0.0 in
  let trace = Array.make slots [||] in
  for t = 0 to slots - 1 do
    (* Admission via drift-plus-penalty. *)
    Array.iteri
      (fun f (s, _) ->
        let qs = q.(s).(f) in
        let a =
          if qs <= 0.0 then a_max
          else Float.min a_max (utility.Utility.u'_inv (qs /. v))
        in
        q.(s).(f) <- q.(s).(f) +. a)
      flows;
    (* Max-weight greedy independent set. *)
    let weights =
      Array.init n_links (fun l ->
          if not (Multigraph.usable g l) then (l, -1, 0.0)
          else begin
            let lk = Multigraph.link g l in
            let u = lk.Multigraph.src and w = lk.Multigraph.dst in
            let best_f = ref (-1) and best_diff = ref 0.0 in
            for f = 0 to n_flows - 1 do
              let _, dst_f = flows.(f) in
              let qv = if w = dst_f then 0.0 else q.(w).(f) in
              let diff = q.(u).(f) -. qv in
              if diff > !best_diff then begin
                best_diff := diff;
                best_f := f
              end
            done;
            (l, !best_f, Multigraph.capacity g l *. !best_diff)
          end)
    in
    let order = Array.copy weights in
    Array.sort (fun (_, _, a) (_, _, b) -> compare b a) order;
    let active = ref [] in
    Array.iter
      (fun (l, f, w) ->
        if f >= 0 && w > 0.0 then begin
          let clashes =
            List.exists (fun (l', _) -> Domain.interferes dom l l') !active
          in
          if not clashes then active := (l, f) :: !active
        end)
      order;
    (* Serve the activated links. *)
    let delivered = Array.make n_flows 0.0 in
    List.iter
      (fun (l, f) ->
        let lk = Multigraph.link g l in
        let u = lk.Multigraph.src and w = lk.Multigraph.dst in
        let amount = Float.min q.(u).(f) (Multigraph.capacity g l) in
        q.(u).(f) <- q.(u).(f) -. amount;
        let _, dst_f = flows.(f) in
        if w = dst_f then delivered.(f) <- delivered.(f) +. amount
        else q.(w).(f) <- q.(w).(f) +. amount)
      !active;
    (* Sliding-window smoothing. *)
    for f = 0 to n_flows - 1 do
      Queue.push delivered.(f) delivered_window.(f);
      window_sum.(f) <- window_sum.(f) +. delivered.(f);
      if Queue.length delivered_window.(f) > window then
        window_sum.(f) <- window_sum.(f) -. Queue.pop delivered_window.(f)
    done;
    trace.(t) <-
      Array.init n_flows (fun f ->
          window_sum.(f) /. float_of_int (Queue.length delivered_window.(f)))
  done;
  let flow_rates = if slots = 0 then Array.make n_flows 0.0 else trace.(slots - 1) in
  let convergence_slot =
    let within slot =
      let ok = ref true in
      for f = 0 to n_flows - 1 do
        let err = Float.abs (trace.(slot).(f) -. flow_rates.(f)) in
        if err > Float.max (0.01 *. Float.abs flow_rates.(f)) 0.01 then ok := false
      done;
      !ok
    in
    let rec last_violation slot =
      if slot < 0 then None
      else if not (within slot) then Some slot
      else last_violation (slot - 1)
    in
    match last_violation (slots - 1) with
    | None -> Some 0
    | Some s -> if s + 1 >= slots then None else Some (s + 1)
  in
  { flow_rates; trace; slots; convergence_slot }
