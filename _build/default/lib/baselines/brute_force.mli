(** Brute-force single-path rate search (SP-bf / SP-WiFi-bf).

    The paper's testbed baseline sweeps the sending rate from 0 to the
    maximum in 0.25 MB/s (2 Mbit/s) increments on a fixed single route
    and keeps the maximum *received* rate. It needs no capacity
    estimates and no margin δ, so it upper-bounds what any single-path
    scheme can do on that route; EMPoWER beating it demonstrates a
    genuine multipath gain. *)

val best_rate_on_path :
  ?step:float -> Multigraph.t -> Domain.t -> Paths.t -> float
(** Maximum delivered goodput over offered rates [0, step, 2·step, …]
    (default step 2 Mbit/s, the paper's 0.25 MB/s), evaluated against
    the fluid MAC model. *)

val sp_bf :
  ?csc:bool -> ?step:float -> Multigraph.t -> Domain.t -> src:int -> dst:int -> float
(** {!best_rate_on_path} on the single-path procedure's route;
    0 when unreachable. *)
