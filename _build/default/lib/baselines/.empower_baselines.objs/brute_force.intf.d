lib/baselines/brute_force.mli: Domain Multigraph Paths
