lib/baselines/backpressure.mli: Domain Multigraph Utility
