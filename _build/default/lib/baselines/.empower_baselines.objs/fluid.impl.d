lib/baselines/fluid.ml: Array Domain Float Hashtbl List Multigraph Paths
