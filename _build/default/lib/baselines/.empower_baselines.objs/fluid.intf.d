lib/baselines/fluid.mli: Domain Multigraph Paths
