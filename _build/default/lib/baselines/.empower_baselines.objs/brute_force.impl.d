lib/baselines/brute_force.ml: Float Fluid List Multigraph Paths Single_path
