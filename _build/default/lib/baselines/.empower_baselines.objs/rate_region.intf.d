lib/baselines/rate_region.mli: Domain Multigraph Simplex
