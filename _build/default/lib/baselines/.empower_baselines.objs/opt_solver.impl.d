lib/baselines/opt_solver.ml: Array Float List Rate_region Simplex Utility
