lib/baselines/schemes.ml: Array Builder Cc_result Domain Float Fluid List Multi_cc Multigraph Multipath Problem Rng Single_path Update Yen
