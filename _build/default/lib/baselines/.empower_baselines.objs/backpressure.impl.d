lib/baselines/backpressure.ml: Array Domain Float List Multigraph Queue Utility
