lib/baselines/opt_solver.mli: Domain Multigraph Rate_region Utility
