lib/baselines/rate_region.ml: Array Domain Fun List Multigraph Simplex
