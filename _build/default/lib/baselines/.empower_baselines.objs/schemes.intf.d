lib/baselines/schemes.mli: Builder Domain Multigraph Paths Rng
