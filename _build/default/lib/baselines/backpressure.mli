(** Slotted backpressure / max-weight dynamics (Neely et al. [27]).

    The paper's Section 5.2.2 notes that although backpressure is
    throughput-optimal at steady state, good routes are only used
    after queues on bad routes fill up, so convergence takes
    thousands of slots (vs ~90 for EMPoWER). This module implements
    the dynamic to measure exactly that:

    - per-(node, flow) queues (in Mbit);
    - drift-plus-penalty admission at each source:
      [a_f = U'^-1(Q_{s_f,f} / V)] clamped to [0, a_max];
    - max-weight scheduling each slot: links weighted by
      [c_l * max_f (Q_u,f - Q_v,f)+], activated greedily subject to
      non-interference (greedy maximal-weight independent set — the
      practical surrogate for the NP-hard exact max-weight problem
      [13]);
    - destination queues drain instantly.

    Throughput per flow is the delivered rate smoothed over a sliding
    window; convergence is measured exactly as for the controller
    (within 1% of the final value, 0.01 Mbps floor). *)

type result = {
  flow_rates : float array;   (** final smoothed delivered rates (Mbit/s per slot unit) *)
  trace : float array array;  (** smoothed delivered rates after each slot *)
  slots : int;
  convergence_slot : int option;
}

val run :
  ?v:float ->
  ?a_max:float ->
  ?slots:int ->
  ?window:int ->
  ?utility:Utility.t ->
  Multigraph.t ->
  Domain.t ->
  flows:(int * int) list ->
  result
(** Run the dynamic. Defaults: [v = 300] (utility weight; larger is
    closer to optimal but slower), [a_max = 200] Mbps admission cap,
    [slots = 20000], [window = 200] slots of smoothing. *)
