(* State of the fixed point: per (route, hop) arrival rate. The
   arrival at hop k is the offered rate damped by the service scaling
   of hops 0..k-1; per-link demand aggregates arrivals of every route
   hop crossing that link. Only links actually carrying traffic need
   their domain load evaluated, which keeps the loop fast on large
   networks. *)

let compute ?(iterations = 50) g dom ~offered =
  let n_links = Multigraph.num_links g in
  let routes = Array.of_list offered in
  let hops = Array.map (fun (p, _) -> Array.of_list p.Paths.links) routes in
  (* The links that can ever carry demand. *)
  let active = Hashtbl.create 32 in
  Array.iter (Array.iter (fun l -> Hashtbl.replace active l ())) hops;
  let active_links = Hashtbl.fold (fun l () acc -> l :: acc) active [] in
  (* scale.(l): fraction of link l's demand that gets served. *)
  let scale = Array.make n_links 1.0 in
  let demand = Array.make n_links 0.0 in
  for _ = 1 to iterations do
    List.iter (fun l -> demand.(l) <- 0.0) active_links;
    Array.iteri
      (fun r (_, x) ->
        let arrival = ref (Float.max 0.0 x) in
        Array.iter
          (fun l ->
            demand.(l) <- demand.(l) +. (!arrival *. Multigraph.d g l);
            arrival := !arrival *. scale.(l))
          hops.(r))
      routes;
    (* Domain load of link l: total airtime demanded inside I_l. A link
       in an overloaded neighborhood serves 1/load of its demand. *)
    List.iter
      (fun l ->
        let load =
          List.fold_left (fun acc l' -> acc +. demand.(l')) 0.0 (Domain.domain dom l)
        in
        scale.(l) <- (if load > 1.0 then 1.0 /. load else 1.0))
      active_links
  done;
  (scale, demand, hops, routes)

let goodput ?iterations g dom ~offered =
  let scale, _, hops, routes = compute ?iterations g dom ~offered in
  Array.to_list
    (Array.mapi
       (fun r (_, x) ->
         Array.fold_left (fun rate l -> rate *. scale.(l)) (Float.max 0.0 x) hops.(r))
       routes)

let link_airtime ?iterations g dom ~offered =
  let scale, demand, _, _ = compute ?iterations g dom ~offered in
  Array.mapi (fun l dem -> dem *. Float.min 1.0 scale.(l)) demand
