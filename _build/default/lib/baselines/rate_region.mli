(** Airtime-feasibility polytopes as linear-program rows.

    Arc-flow formulation: one variable y_{f,l} >= 0 per (flow, usable
    directed link) gives the Mbit/s of flow f carried by link l. The
    flow value x_f is the net outflow at the flow's source. Two
    interference models bound the airtime:

    - {b Exact} (the paper's "optimal" centralized scheduler): one row
      per maximal clique c of the link-interference graph,
      [Σ_{l∈c} d_l Σ_f y_{f,l} <= 1 - δ]. For perfect interference
      graphs this is the exact schedulability region of a perfectly
      scheduled medium.
    - {b Conservative} (constraint (2), what EMPoWER enforces): one
      row per link l, [Σ_{l'∈I_l} d_{l'} Σ_f y_{f,l'} <= 1 - δ].
      Always a subset of the exact region.

    Conservation holds at every node except each flow's endpoints. *)

type model = Exact | Conservative

type t
(** A compiled region for one multigraph + flow list. *)

val build :
  ?delta:float -> model -> Multigraph.t -> Domain.t -> flows:(int * int) list -> t
(** Compile the region. Flows are (source, destination) pairs; [delta]
    defaults to 0. Requires distinct endpoints per flow. *)

val n_vars : t -> int
(** Number of LP variables. *)

val rows : t -> (float array * Simplex.op * float) list
(** All constraint rows (conservation equalities + airtime
    inequalities); variables are implicitly nonnegative. *)

val flow_value_coeffs : t -> int -> float array
(** Coefficient vector c with [c . y] = x_f (net outflow of flow [f]
    at its source). *)

val flow_values : t -> float array -> float array
(** All flow values under an LP solution. *)

val total_value_coeffs : t -> float array
(** Coefficients of [Σ_f x_f]. *)
